//! FP — Filter Priority summaries for sparse data (Cormode, Procopiuc,
//! Srivastava, Tran; ICDT 2012).
//!
//! Conceptually: add `Lap(1/epsilon)` to *every* cell of the (possibly
//! astronomically large) contingency table, keep only cells whose noisy
//! value exceeds a threshold `theta`, answer queries from the retained
//! summary with zeros elsewhere.
//!
//! Materialising that is impossible for large domains, but the release can
//! be simulated exactly in two parts:
//!
//! * the (at most `n`) non-zero cells get explicit noise and are filtered
//!   against `theta`;
//! * the number of *zero* cells whose pure noise crosses `theta` is
//!   `Binomial(M0, p)` with `p = 0.5 * exp(-theta * epsilon)`; their
//!   positions are uniform over the zero cells and their values follow the
//!   conditional Laplace tail `theta + Exp(1/epsilon)` (memorylessness).
//!
//! The paper notes FP's weakness — "if a large number of small-count
//! non-zero entries exists ... zero entries \[get\] a higher probability to
//! be in the final summary" — which this simulation reproduces faithfully.

use crate::{DimRange, RangeCountEstimator};
use dpmech::{laplace_noise, Epsilon};
use rngkit::Rng;
use std::collections::HashMap;

/// A published FP summary.
#[derive(Debug, Clone)]
pub struct FpSummary {
    /// Retained cells: coordinates and noisy (non-negative, post-processed)
    /// values.
    cells: Vec<(Vec<u32>, f64)>,
    dims: usize,
}

impl FpSummary {
    /// Publishes an FP summary of the columnar dataset under
    /// `epsilon`-DP.
    ///
    /// `theta` is the retention threshold; `None` picks the pragmatic
    /// default `theta = ln(M0) / epsilon`, which keeps the expected number
    /// of zero-cell false positives at ~0.5 so pure-noise cells cannot
    /// swamp the summary. (Small true cells below `theta` are filtered too
    /// — the weakness the DPCopula paper calls out.)
    ///
    /// # Panics
    /// Panics if the expected number of false positives exceeds 10x the
    /// dataset size (the summary would stop being "compact"; pick a larger
    /// `theta`).
    pub fn publish<R: Rng + ?Sized>(
        columns: &[Vec<u32>],
        domains: &[usize],
        epsilon: Epsilon,
        theta: Option<f64>,
        rng: &mut R,
    ) -> Self {
        assert_eq!(columns.len(), domains.len(), "one column per dimension");
        assert!(!columns.is_empty(), "need at least one dimension");
        let n = columns[0].len();
        let eps = epsilon.value();

        // Exact non-zero cells.
        let mut nonzero: HashMap<Vec<u32>, f64> = HashMap::new();
        for row in 0..n {
            let key: Vec<u32> = columns.iter().map(|c| c[row]).collect();
            *nonzero.entry(key).or_insert(0.0) += 1.0;
        }

        let total_cells: f64 = domains.iter().map(|&d| d as f64).product();
        let m0 = (total_cells - nonzero.len() as f64).max(0.0);
        let theta = theta.unwrap_or_else(|| (m0.max(2.0).ln() / eps).max(2.0 / eps));

        // Part 1: noisy non-zero cells, filtered.
        let mut cells: Vec<(Vec<u32>, f64)> = Vec::new();
        for (key, count) in nonzero.iter() {
            let noisy = count + laplace_noise(rng, 1.0 / eps);
            if noisy > theta {
                cells.push((key.clone(), noisy));
            }
        }

        // Part 2: zero-cell false positives.
        let p = 0.5 * (-theta * eps).exp();
        let expected = m0 * p;
        assert!(
            expected <= 10.0 * n.max(1) as f64,
            "theta {theta} admits ~{expected} false positives; raise theta"
        );
        let fp_count = sample_binomial_approx(rng, m0, p);
        for _ in 0..fp_count {
            // Uniform random cell; re-draw on (rare) collision with a
            // non-zero cell.
            let key = loop {
                let k: Vec<u32> = domains
                    .iter()
                    .map(|&d| rng.gen_range(0..d as u32))
                    .collect();
                if !nonzero.contains_key(&k) {
                    break k;
                }
            };
            // Conditional Laplace above theta: theta + Exp(1/eps).
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            cells.push((key, theta - u.ln() / eps));
        }

        Self {
            cells,
            dims: columns.len(),
        }
    }

    /// Number of retained cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell survived the filter.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Samples `Binomial(m, p)` for potentially huge `m` via the Poisson /
/// normal approximation (`m * p` is moderate by construction).
fn sample_binomial_approx<R: Rng + ?Sized>(rng: &mut R, m: f64, p: f64) -> usize {
    let lambda = m * p;
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        // Exact Poisson by inversion.
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut prod: f64 = 1.0;
        loop {
            prod *= rng.gen::<f64>();
            if prod <= l || k > 10_000 {
                return k;
            }
            k += 1;
        }
    }
    // Normal approximation.
    let z = mathkit::dist::standard_normal(rng);
    (lambda + z * lambda.sqrt()).round().max(0.0) as usize
}

impl RangeCountEstimator for FpSummary {
    fn range_count(&mut self, query: &[DimRange]) -> f64 {
        assert_eq!(query.len(), self.dims, "query arity mismatch");
        self.cells
            .iter()
            .filter(|(key, _)| {
                key.iter()
                    .zip(query)
                    .all(|(&v, &(lo, hi))| v >= lo && v <= hi)
            })
            .map(|(_, v)| *v)
            .sum()
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::scan_range_count;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn sparse_data(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Concentrated on a few heavy cells.
        let c0: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5u32) * 100).collect();
        let c1: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5u32) * 100).collect();
        vec![c0, c1]
    }

    #[test]
    fn heavy_cells_survive_filtering() {
        let cols = sparse_data(10_000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut fp = FpSummary::publish(
            &cols,
            &[1000, 1000],
            Epsilon::new(1.0).unwrap(),
            None,
            &mut rng,
        );
        // ~25 heavy cells, each ~400 records: a full-domain query should
        // recover most of the mass.
        let q = vec![(0u32, 999u32), (0u32, 999u32)];
        let est = fp.range_count(&q);
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.2,
            "full-domain estimate {est}"
        );
    }

    #[test]
    fn summary_is_compact() {
        let cols = sparse_data(5_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let fp = FpSummary::publish(
            &cols,
            &[1000, 1000],
            Epsilon::new(1.0).unwrap(),
            None,
            &mut rng,
        );
        // Non-zero cells: 25. False positives: expected ~ n/2 at worst.
        assert!(fp.len() < 40_000, "summary size {}", fp.len());
        assert!(!fp.is_empty());
    }

    #[test]
    fn subrange_queries_track_truth() {
        let cols = sparse_data(50_000, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut fp = FpSummary::publish(
            &cols,
            &[1000, 1000],
            Epsilon::new(2.0).unwrap(),
            None,
            &mut rng,
        );
        let q = vec![(0u32, 250u32), (0u32, 999u32)];
        let truth = scan_range_count(&cols, &q);
        let est = fp.range_count(&q);
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn binomial_approx_means_match() {
        let mut rng = StdRng::seed_from_u64(7);
        // Small lambda regime.
        let small: f64 = (0..2_000)
            .map(|_| sample_binomial_approx(&mut rng, 1e6, 5e-6) as f64)
            .sum::<f64>()
            / 2_000.0;
        assert!((small - 5.0).abs() < 0.3, "small-lambda mean {small}");
        // Large lambda regime.
        let large: f64 = (0..500)
            .map(|_| sample_binomial_approx(&mut rng, 1e8, 1e-5) as f64)
            .sum::<f64>()
            / 500.0;
        assert!((large - 1_000.0).abs() < 10.0, "large-lambda mean {large}");
    }

    #[test]
    fn zero_record_dataset() {
        let cols: Vec<Vec<u32>> = vec![vec![], vec![]];
        let mut rng = StdRng::seed_from_u64(8);
        let mut fp = FpSummary::publish(
            &cols,
            &[100, 100],
            Epsilon::new(1.0).unwrap(),
            Some(20.0),
            &mut rng,
        );
        let est = fp.range_count(&[(0, 99), (0, 99)]);
        assert!(est.abs() < 50.0, "estimate {est}");
    }
}
