//! EFPA — Enhanced Fourier Perturbation Algorithm (Ács, Castelluccia,
//! Chen; ICDM 2012).
//!
//! Publishes a 1-D histogram by keeping only the first `k` Fourier
//! coefficients (plus their Hermitian mirrors, so the reconstruction is
//! real), perturbing them with Laplace noise, and choosing `k` itself
//! privately with the exponential mechanism over the expected total error
//! (truncation energy + perturbation energy). This is the method the
//! DPCopula paper uses to obtain its DP marginal histograms (§4.1 step 1),
//! selected there as "superior to other methods".
//!
//! Budget split: `epsilon/2` for the choice of `k`, `epsilon/2` for the
//! coefficient perturbation.

use crate::Publish1d;
use dpmech::{exponential_mechanism, laplace_noise, Epsilon};
use mathkit::fft::{fft_real, ifft_real, Complex};
use rngkit::RngCore;

/// EFPA publication algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Efpa;

impl Efpa {
    /// Expected squared perturbation error when keeping `k` unique
    /// coefficients under budget `eps_p`, in the orthonormal Fourier
    /// domain.
    ///
    /// Each of the `2k` real components gets `Lap(sqrt(2k)/eps_p)` noise
    /// (L1 sensitivity of the kept coefficient vector is at most
    /// `sqrt(2k)` times the unit L2 sensitivity); mirrored copies double
    /// the injected energy.
    fn noise_energy(k: usize, eps_p: f64) -> f64 {
        let k = k as f64;
        // var per real component = 2 * (sqrt(2k)/eps)^2 = 4k/eps^2;
        // 2k components kept + 2k mirrored copies => 16 k^2 / eps^2.
        16.0 * k * k / (eps_p * eps_p)
    }
}

impl Publish1d for Efpa {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        let a = counts.len();
        if a == 0 {
            return Vec::new();
        }
        if a == 1 {
            // Degenerate domain: plain Laplace release.
            return vec![counts[0] + laplace_noise(rng, 1.0 / epsilon.value())];
        }
        let eps_select = epsilon.fraction(0.5);
        let eps_perturb = epsilon.fraction(0.5);

        // Orthonormal DFT: L2 sensitivity equals the histogram's (=1).
        let scale = 1.0 / (a as f64).sqrt();
        let mut f: Vec<Complex> = fft_real(counts);
        for c in &mut f {
            *c = *c * scale;
        }
        let energy: Vec<f64> = f.iter().map(|c| c.abs() * c.abs()).collect();
        let total_energy: f64 = energy.iter().sum();

        // Candidate k = number of unique low-frequency coefficients kept
        // (indices 0..k plus Hermitian mirrors). k_max covers everything.
        let k_max = a / 2 + 1;
        let mut kept_energy = vec![0.0; k_max + 1]; // kept_energy[k]
        let mut acc = 0.0;
        #[allow(clippy::needless_range_loop)] // k indexes two arrays at offsets
        for k in 1..=k_max {
            let j = k - 1;
            acc += energy[j];
            if j != 0 && j != a - j {
                acc += energy[a - j];
            }
            kept_energy[k] = acc;
        }
        let scores: Vec<f64> = (1..=k_max)
            .map(|k| {
                let tail = (total_energy - kept_energy[k]).max(0.0);
                -(tail + Self::noise_energy(k, eps_perturb.value())).sqrt()
            })
            .collect();
        // Utility sensitivity: one record moves the histogram by an L2
        // distance of 1, so each sqrt-energy score moves by at most ~1;
        // use 2 to cover the noise-term coupling conservatively.
        let k = 1 + exponential_mechanism(rng, &scores, eps_select, 2.0);

        // Perturb the k kept unique coefficients.
        let lambda = (2.0 * k as f64).sqrt() / eps_perturb.value();
        let mut fh = vec![Complex::zero(); a];
        for j in 0..k {
            let mirror = (a - j) % a;
            let self_conjugate = j == mirror || (a.is_multiple_of(2) && j == a / 2);
            let re = f[j].re + laplace_noise(rng, lambda);
            let im = if self_conjugate {
                0.0
            } else {
                f[j].im + laplace_noise(rng, lambda)
            };
            fh[j] = Complex::new(re, im);
            if !self_conjugate {
                fh[mirror] = fh[j].conj();
            }
        }

        // Invert the orthonormal transform.
        let inv_scale = (a as f64).sqrt();
        for c in &mut fh {
            *c = *c * inv_scale;
        }
        ifft_real(&fh)
    }

    fn name(&self) -> &'static str {
        "efpa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn smooth_hist(a: usize, n: f64) -> Vec<f64> {
        // A smooth unimodal histogram — the regime where EFPA shines.
        let mid = a as f64 / 2.0;
        let raw: Vec<f64> = (0..a)
            .map(|i| (-((i as f64 - mid) / (a as f64 / 6.0)).powi(2)).exp())
            .collect();
        let s: f64 = raw.iter().sum();
        raw.iter().map(|v| v * n / s).collect()
    }

    #[test]
    fn output_length_matches_input() {
        let mut rng = StdRng::seed_from_u64(1);
        for &a in &[1usize, 2, 5, 64, 100, 586] {
            let h = smooth_hist(a.max(2), 1000.0);
            let h = &h[..a];
            let out = Efpa.publish(h, Epsilon::new(1.0).unwrap(), &mut rng);
            assert_eq!(out.len(), a);
        }
    }

    #[test]
    fn high_budget_reconstructs_smooth_histogram() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = smooth_hist(128, 100_000.0);
        let out = Efpa.publish(&h, Epsilon::new(50.0).unwrap(), &mut rng);
        let l1: f64 = out.iter().zip(&h).map(|(a, b)| (a - b).abs()).sum();
        // Total mass 1e5; reconstruction error should be well below 1%.
        assert!(l1 < 1_000.0, "L1 error {l1}");
    }

    #[test]
    fn beats_identity_on_smooth_data_with_small_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = smooth_hist(512, 50_000.0);
        let eps = Epsilon::new(0.05).unwrap();
        let mut efpa_err = 0.0;
        let mut id_err = 0.0;
        for _ in 0..50 {
            let e = Efpa.publish(&h, eps, &mut rng);
            efpa_err += e.iter().zip(&h).map(|(a, b)| (a - b).powi(2)).sum::<f64>();
            let i = crate::identity::Identity.publish(&h, eps, &mut rng);
            id_err += i.iter().zip(&h).map(|(a, b)| (a - b).powi(2)).sum::<f64>();
        }
        assert!(
            efpa_err < id_err,
            "EFPA {efpa_err} should beat identity {id_err} on smooth data"
        );
    }

    #[test]
    fn total_mass_is_approximately_preserved() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = smooth_hist(100, 10_000.0);
        let out = Efpa.publish(&h, Epsilon::new(1.0).unwrap(), &mut rng);
        let total: f64 = out.iter().sum();
        // DC coefficient noise is Lap(sqrt(2k)/eps) scaled by sqrt(A);
        // total mass stays within a few hundred of 10k.
        assert!((total - 10_000.0).abs() < 2_000.0, "total {total}");
    }

    #[test]
    fn empty_input() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(Efpa
            .publish(&[], Epsilon::new(1.0).unwrap(), &mut rng)
            .is_empty());
    }

    #[test]
    fn single_bin_domain() {
        let mut rng = StdRng::seed_from_u64(6);
        let out = Efpa.publish(&[42.0], Epsilon::new(2.0).unwrap(), &mut rng);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 42.0).abs() < 10.0);
    }
}
