//! P-HP — private hierarchical partitioning (Ács, Castelluccia, Chen;
//! ICDM 2012).
//!
//! Recursively bisects the histogram index range, choosing each bisection
//! point with the exponential mechanism so that the two sides are as close
//! to internally uniform as possible (minimum approximation error); the
//! final partitions are then released as Laplace-noised averages smeared
//! over their bins.
//!
//! Deviations from the original, documented in DESIGN.md:
//! * the partition error is measured in L2 (sum of squared deviations from
//!   the mean), computable in O(1) from prefix sums, instead of L1 — the
//!   shapes of both utilities agree on where the good bisection points
//!   are;
//! * candidate bisection points are subsampled to at most
//!   [`PhpConfig::max_candidates`] evenly spaced positions per segment,
//!   taming the quadratic worst case the DPCopula paper complains about.
//!
//! Budget: `epsilon/2` for the hierarchy of bisections (split across
//! levels; the segments at one level are disjoint so they compose in
//! parallel), `epsilon/2` for the partition counts (disjoint, parallel).

use crate::Publish1d;
use dpmech::{exponential_mechanism, laplace_noise, Epsilon};
use rngkit::{Rng, RngCore};

/// Tuning parameters for [`Php`].
#[derive(Debug, Clone, Copy)]
pub struct PhpConfig {
    /// Number of bisection levels (final partitions <= 2^depth).
    pub depth: usize,
    /// Maximum number of candidate bisection positions per segment.
    pub max_candidates: usize,
}

impl Default for PhpConfig {
    fn default() -> Self {
        Self {
            depth: 10,
            max_candidates: 64,
        }
    }
}

/// P-HP publication algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Php {
    /// Configuration; `Default` matches the paper's regime.
    pub config: PhpConfig,
}

impl Php {
    /// Creates P-HP with an explicit configuration.
    pub fn with_config(config: PhpConfig) -> Self {
        Self { config }
    }
}

struct PrefixSums {
    /// prefix[i] = sum of counts[0..i]
    sum: Vec<f64>,
    /// prefix of squares
    sq: Vec<f64>,
}

impl PrefixSums {
    fn new(counts: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(counts.len() + 1);
        let mut sq = Vec::with_capacity(counts.len() + 1);
        sum.push(0.0);
        sq.push(0.0);
        for &c in counts {
            sum.push(sum.last().unwrap() + c);
            sq.push(sq.last().unwrap() + c * c);
        }
        Self { sum, sq }
    }

    /// Sum of counts over `[lo, hi]` inclusive.
    fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        self.sum[hi + 1] - self.sum[lo]
    }

    /// Sum of squared deviations from the mean over `[lo, hi]` inclusive.
    fn sse(&self, lo: usize, hi: usize) -> f64 {
        let n = (hi - lo + 1) as f64;
        let s = self.range_sum(lo, hi);
        let q = self.sq[hi + 1] - self.sq[lo];
        (q - s * s / n).max(0.0)
    }
}

impl Publish1d for Php {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        let a = counts.len();
        if a == 0 {
            return Vec::new();
        }
        let eps_structure = epsilon.fraction(0.5);
        let eps_counts = epsilon.fraction(0.5);
        let depth = self.config.depth.max(1);
        let eps_per_level = eps_structure.divide(depth);

        let prefix = PrefixSums::new(counts);

        // Build the partition boundaries level by level.
        let mut segments: Vec<(usize, usize)> = vec![(0, a - 1)];
        for _level in 0..depth {
            let mut next = Vec::with_capacity(segments.len() * 2);
            for &(lo, hi) in &segments {
                if hi == lo {
                    next.push((lo, hi));
                    continue;
                }
                let split = private_bisection(
                    &prefix,
                    lo,
                    hi,
                    self.config.max_candidates,
                    eps_per_level,
                    rng,
                );
                next.push((lo, split));
                next.push((split + 1, hi));
            }
            segments = next;
        }

        // Release each partition's total with Laplace noise (partitions are
        // disjoint: parallel composition) and smear it uniformly.
        let mut out = vec![0.0; a];
        let scale = 1.0 / eps_counts.value();
        for &(lo, hi) in &segments {
            let total = prefix.range_sum(lo, hi) + laplace_noise(rng, scale);
            let avg = total / (hi - lo + 1) as f64;
            for v in &mut out[lo..=hi] {
                *v = avg;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "p-hp"
    }
}

/// Chooses a bisection point in `[lo, hi)` (split after the returned
/// index) with the exponential mechanism, scoring candidates by the
/// negative combined SSE of the two sides. SSE changes by at most ~2x+1
/// when one bin changes by 1; we use utility sensitivity 2 on the
/// *normalised* (square-rooted) scores.
fn private_bisection<R: Rng + ?Sized>(
    prefix: &PrefixSums,
    lo: usize,
    hi: usize,
    max_candidates: usize,
    eps: Epsilon,
    rng: &mut R,
) -> usize {
    debug_assert!(hi > lo);
    let width = hi - lo; // candidate splits: lo..hi (split after index)
    let n_cand = width.min(max_candidates.max(1));
    let candidates: Vec<usize> = (0..n_cand)
        .map(|i| lo + ((i as u64 * width as u64) / n_cand as u64) as usize)
        .collect();
    let scores: Vec<f64> = candidates
        .iter()
        .map(|&t| -(prefix.sse(lo, t) + prefix.sse(t + 1, hi)).sqrt())
        .collect();
    let pick = exponential_mechanism(rng, &scores, eps, 2.0);
    candidates[pick]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn prefix_sums_are_consistent() {
        let p = PrefixSums::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.range_sum(0, 3), 10.0);
        assert_eq!(p.range_sum(1, 2), 5.0);
        // SSE of [1,2,3,4]: mean 2.5 -> 2.25+0.25+0.25+2.25 = 5.
        assert!((p.sse(0, 3) - 5.0).abs() < 1e-12);
        // SSE of a single element is 0.
        assert_eq!(p.sse(2, 2), 0.0);
    }

    #[test]
    fn finds_obvious_step_boundary() {
        // Step function: 100 for the first half, 0 for the second. A good
        // bisection should land near the step.
        let mut counts = vec![100.0; 64];
        counts.extend(vec![0.0; 64]);
        let prefix = PrefixSums::new(&counts);
        let mut rng = StdRng::seed_from_u64(1);
        let split = private_bisection(&prefix, 0, 127, 128, Epsilon::new(100.0).unwrap(), &mut rng);
        assert!((60..=66).contains(&split), "split {split}");
    }

    #[test]
    fn piecewise_constant_data_is_reconstructed_well() {
        let mut counts = vec![50.0; 100];
        counts.extend(vec![200.0; 100]);
        counts.extend(vec![10.0; 56]);
        let mut rng = StdRng::seed_from_u64(2);
        let out = Php::default().publish(&counts, Epsilon::new(10.0).unwrap(), &mut rng);
        assert_eq!(out.len(), 256);
        let l1: f64 = out.iter().zip(&counts).map(|(a, b)| (a - b).abs()).sum();
        let total: f64 = counts.iter().sum();
        assert!(l1 / total < 0.1, "relative L1 {}", l1 / total);
    }

    #[test]
    fn output_length_and_empty_input() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(Php::default()
            .publish(&[], Epsilon::new(1.0).unwrap(), &mut rng)
            .is_empty());
        let out = Php::default().publish(&[5.0], Epsilon::new(1.0).unwrap(), &mut rng);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn smearing_preserves_total_roughly() {
        let counts: Vec<f64> = (0..500).map(|i| f64::from(i % 23)).collect();
        let total: f64 = counts.iter().sum();
        let mut rng = StdRng::seed_from_u64(4);
        let out = Php::default().publish(&counts, Epsilon::new(1.0).unwrap(), &mut rng);
        let noisy_total: f64 = out.iter().sum();
        // <= 2^10 partitions each with Lap(2) noise: sd of the total is
        // bounded by sqrt(1024 * 2 * 4) ~ 91.
        assert!(
            (noisy_total - total).abs() < 500.0,
            "total {noisy_total} vs {total}"
        );
    }
}
