//! NoiseFirst (Xu, Zhang, Xiao, Yang, Yu; ICDE 2012) — "Differentially
//! private histogram publication", reference \[41\] of the DPCopula paper
//! and one of the margin methods its §4.1 name-checks.
//!
//! NoiseFirst adds Laplace noise to every bin *first* (plain Dwork
//! release, the only step that touches the data), then — as pure
//! post-processing — merges the noisy bins into an optimal `k`-segment
//! piecewise-constant histogram by dynamic programming. Merging averages
//! the per-bin noise inside each segment, trading bias (structure lost)
//! for variance (noise suppressed); `k` is chosen with the paper's
//! bias-corrected error estimate
//! `err_true(k) ~ err_noisy(k) + (2k - B) * 2 lambda^2`,
//! which needs no extra budget because the noise variance `2 lambda^2`
//! is public. One refinement over the ICDE'12 estimate: the correction
//! assumes a *fixed* structure, but the DP picks the best boundaries and
//! therefore overfits pure noise by about `2 ln B * var` per free
//! boundary (the classical adaptive-knot optimism); we add that term so
//! tiny budgets collapse to few segments as intended.

use crate::Publish1d;
use dpmech::{laplace_noise, Epsilon};
use rngkit::RngCore;

/// NoiseFirst publication algorithm.
#[derive(Debug, Clone, Copy)]
pub struct NoiseFirst {
    /// Maximum number of segments considered (the DP table is
    /// `O(max_segments * B^2)`).
    pub max_segments: usize,
}

impl Default for NoiseFirst {
    fn default() -> Self {
        Self { max_segments: 48 }
    }
}

/// Prefix sums for O(1) segment SSE.
struct Prefix {
    sum: Vec<f64>,
    sq: Vec<f64>,
}

impl Prefix {
    fn new(v: &[f64]) -> Self {
        let mut sum = vec![0.0];
        let mut sq = vec![0.0];
        for &x in v {
            sum.push(sum.last().unwrap() + x);
            sq.push(sq.last().unwrap() + x * x);
        }
        Self { sum, sq }
    }

    /// SSE of fitting bins `[i, j)` by their mean.
    fn sse(&self, i: usize, j: usize) -> f64 {
        let n = (j - i) as f64;
        let s = self.sum[j] - self.sum[i];
        let q = self.sq[j] - self.sq[i];
        (q - s * s / n).max(0.0)
    }

    fn mean(&self, i: usize, j: usize) -> f64 {
        (self.sum[j] - self.sum[i]) / (j - i) as f64
    }
}

impl Publish1d for NoiseFirst {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        let b = counts.len();
        if b == 0 {
            return Vec::new();
        }
        // Step 1 (the only private step): Dwork release.
        let lambda = 1.0 / epsilon.value();
        let noisy: Vec<f64> = counts
            .iter()
            .map(|&c| c + laplace_noise(rng, lambda))
            .collect();
        if b == 1 {
            return noisy;
        }

        // Step 2 (post-processing): optimal k-segmentation of the noisy
        // histogram for every k up to the cap, via DP:
        // cost[k][j] = min_i cost[k-1][i] + sse(i, j).
        let k_max = self.max_segments.min(b);
        let prefix = Prefix::new(&noisy);
        // cost[j] for current k; parent pointers to rebuild boundaries.
        let mut prev: Vec<f64> = (0..=b)
            .map(|j| if j == 0 { 0.0 } else { prefix.sse(0, j) })
            .collect();
        let noise_var = 2.0 * lambda * lambda;
        let overfit = 2.0 * (b as f64).ln().max(1.0) * noise_var;
        let estimate =
            |cost_b: f64, k: f64| cost_b + (2.0 * k - b as f64) * noise_var + k * overfit;
        let mut best = (1usize, estimate(prev[b], 1.0));
        #[allow(clippy::needless_range_loop)] // j/i index DP tables at offsets
        for k in 2..=k_max {
            let mut cur = vec![f64::INFINITY; b + 1];
            for j in k..=b {
                // Last segment is [i, j); i ranges over k-1..j.
                let mut bc = f64::INFINITY;
                for i in (k - 1)..j {
                    let c = prev[i] + prefix.sse(i, j);
                    if c < bc {
                        bc = c;
                    }
                }
                cur[j] = bc;
            }
            // Bias-corrected expected true error (ICDE'12 §4) plus the
            // adaptive-boundary optimism term.
            let est = estimate(cur[b], k as f64);
            if est < best.1 {
                best = (k, est);
            }
            prev = cur;
        }

        // Re-run the DP for the winning k, this time keeping the cut
        // positions so the boundaries can be walked back.
        let k_star = best.0;
        let mut cost: Vec<Vec<f64>> = vec![vec![f64::INFINITY; b + 1]; k_star + 1];
        let mut cut: Vec<Vec<usize>> = vec![vec![0; b + 1]; k_star + 1];
        for (j, c) in cost[1].iter_mut().enumerate().skip(1) {
            *c = prefix.sse(0, j);
        }
        #[allow(clippy::needless_range_loop)] // j indexes two DP tables
        for k in 2..=k_star {
            for j in k..=b {
                for i in (k - 1)..j {
                    let c = cost[k - 1][i] + prefix.sse(i, j);
                    if c < cost[k][j] {
                        cost[k][j] = c;
                        cut[k][j] = i;
                    }
                }
            }
        }
        // Walk back the boundaries and emit segment means.
        let mut out = vec![0.0; b];
        let mut j = b;
        let mut k = k_star;
        while k >= 1 {
            let i = if k == 1 { 0 } else { cut[k][j] };
            let mean = prefix.mean(i, j);
            for v in &mut out[i..j] {
                *v = mean;
            }
            j = i;
            k -= 1;
        }
        out
    }

    fn name(&self) -> &'static str {
        "noisefirst"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Identity;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn output_length_and_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(NoiseFirst::default()
            .publish(&[], Epsilon::new(1.0).unwrap(), &mut rng)
            .is_empty());
        assert_eq!(
            NoiseFirst::default()
                .publish(&[3.0], Epsilon::new(1.0).unwrap(), &mut rng)
                .len(),
            1
        );
    }

    #[test]
    fn piecewise_constant_data_is_denoised() {
        // Step data: merging should beat the raw Dwork release clearly at
        // a small budget.
        let mut counts = vec![100.0; 60];
        counts.extend(vec![10.0; 80]);
        counts.extend(vec![200.0; 60]);
        let eps = Epsilon::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut nf_err = 0.0;
        let mut id_err = 0.0;
        for _ in 0..5 {
            let nf = NoiseFirst::default().publish(&counts, eps, &mut rng);
            nf_err += nf
                .iter()
                .zip(&counts)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>();
            let id = Identity.publish(&counts, eps, &mut rng);
            id_err += id
                .iter()
                .zip(&counts)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>();
        }
        assert!(
            nf_err < id_err / 3.0,
            "NoiseFirst {nf_err} should beat identity {id_err}"
        );
    }

    #[test]
    fn high_budget_keeps_structure() {
        // With large epsilon the bias correction should keep many
        // segments and track the data closely.
        let counts: Vec<f64> = (0..100).map(|i| f64::from(i) * 3.0).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let out = NoiseFirst::default().publish(&counts, Epsilon::new(50.0).unwrap(), &mut rng);
        let l1: f64 = out.iter().zip(&counts).map(|(a, b)| (a - b).abs()).sum();
        let total: f64 = counts.iter().sum();
        assert!(l1 / total < 0.1, "relative L1 {}", l1 / total);
    }

    #[test]
    fn tiny_budget_collapses_to_few_segments() {
        // With eps -> 0 the correction favours tiny k: output should be
        // near piecewise-constant with very few distinct values.
        let counts: Vec<f64> = (0..120).map(|i| f64::from(i % 7)).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let out = NoiseFirst::default().publish(&counts, Epsilon::new(0.001).unwrap(), &mut rng);
        let mut distinct: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 6, "{} distinct levels", distinct.len());
    }
}
