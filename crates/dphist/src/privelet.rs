//! Privelet / Privelet+ (Xiao, Wang, Gehrke; ICDE 2010): differential
//! privacy via Haar wavelet transforms.
//!
//! The histogram is Haar-transformed; each coefficient `c` receives Laplace
//! noise `Lap(rho / (epsilon * W(c)))` where `W(c)` is the coefficient's
//! *generalised weight* (the support size of its node; the domain size for
//! the root average) and `rho = prod_i (log2 |A_i| + 1)` is the generalised
//! sensitivity. Any range sum then only involves the `O(log |A|)` noisy
//! coefficients whose node straddles a range boundary, which is what gives
//! Privelet its polylogarithmic error.
//!
//! Two variants are provided:
//!
//! * [`Privelet1d`] — the materialised 1-D transform ([`crate::Publish1d`]);
//! * [`PriveletPlus`] — the multi-dimensional estimator. Instead of
//!   materialising the `prod |A_i|`-cell grid (hopeless beyond 2-D), it
//!   exploits linearity: `answer(q) = true_count(q) + sum_k X_k * phi_k(q)`
//!   where the sum runs over the few boundary coefficients of `q` and
//!   `X_k` is the coefficient's Laplace noise. Noise values are derived
//!   deterministically from a per-release seed hashed with the coefficient
//!   index, so every query of one release sees the *same* noisy transform
//!   — a statistically exact simulation of materialised Privelet+ in
//!   `O(prod_i log |A_i|)` work per query and O(1) memory.

use crate::histogram::scan_range_count;
use crate::{DimRange, Publish1d, RangeCountEstimator};
use dpmech::{laplace_noise, Epsilon};
use mathkit::wavelet::{haar_forward, haar_inverse, pad_to_pow2};
use rngkit::RngCore;

/// Materialised 1-D Privelet.
#[derive(Debug, Clone, Copy, Default)]
pub struct Privelet1d;

impl Publish1d for Privelet1d {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        if counts.is_empty() {
            return Vec::new();
        }
        let (padded, orig_len) = pad_to_pow2(counts);
        let pad = padded.len();
        let h = pad.trailing_zeros();
        let rho = f64::from(h) + 1.0;
        let mut coeffs = haar_forward(&padded);
        for (i, c) in coeffs.iter_mut().enumerate() {
            let w = coefficient_weight(i, pad);
            *c += laplace_noise(rng, rho / (epsilon.value() * w));
        }
        let mut out = haar_inverse(&coeffs);
        out.truncate(orig_len);
        out
    }

    fn name(&self) -> &'static str {
        "privelet"
    }
}

/// Generalised weight of coefficient `i` in the [`haar_forward`] layout:
/// the root average (index 0) has weight `pad`; a detail node has weight
/// equal to its support length.
fn coefficient_weight(i: usize, pad: usize) -> f64 {
    if i == 0 {
        pad as f64
    } else {
        // Detail at array index i belongs to the level with `half`
        // nodes where half = previous power of two <= i; support length
        // is pad / half.
        let half = prev_power_of_two(i);
        (pad / half) as f64
    }
}

fn prev_power_of_two(i: usize) -> usize {
    debug_assert!(i >= 1);
    1 << (usize::BITS - 1 - i.leading_zeros())
}

/// One boundary item of a 1-D range: the coefficient's array index, its
/// synthesis weight `phi` for the range, and its generalised weight `W`.
#[derive(Debug, Clone, Copy)]
struct BoundaryItem {
    index: u32,
    phi: f64,
    weight: f64,
}

/// Enumerates the Haar coefficients with non-zero synthesis weight for the
/// inclusive range `[lo, hi]` over a padded domain of size `pad`.
///
/// Range sums only see (a) the root average with `phi = |range|` and
/// (b) detail nodes straddling a range boundary with
/// `phi = |range ∩ left half| - |range ∩ right half|` — at most two nodes
/// per level.
fn boundary_items(lo: u32, hi: u32, pad: usize) -> Vec<BoundaryItem> {
    debug_assert!(lo <= hi && (hi as usize) < pad);
    let mut out = Vec::with_capacity(2 * pad.trailing_zeros() as usize + 1);
    out.push(BoundaryItem {
        index: 0,
        phi: (hi - lo + 1) as f64,
        weight: pad as f64,
    });
    // Walk detail nodes from the coarsest (array index 1, support [0, pad)).
    let mut stack: Vec<(usize, usize, u32, u32)> = vec![(1, 1, 0, pad as u32 - 1)];
    // (level_half, array_index, support_lo, support_hi)
    while let Some((half, idx, s_lo, s_hi)) = stack.pop() {
        if hi < s_lo || lo > s_hi {
            continue; // disjoint: zero synthesis weight, prune
        }
        if lo <= s_lo && hi >= s_hi {
            continue; // fully covered: |left|-|right| = 0, descendants too
        }
        let mid = s_lo + (s_hi - s_lo) / 2; // end of left half (inclusive)
        let left = overlap(lo, hi, s_lo, mid);
        let right = overlap(lo, hi, mid + 1, s_hi);
        let phi = left - right;
        if phi != 0.0 {
            out.push(BoundaryItem {
                index: idx as u32,
                phi,
                weight: (s_hi - s_lo + 1) as f64,
            });
        }
        if s_hi > s_lo {
            let child_half = half * 2;
            if child_half <= pad / 2 {
                let pos = idx - half; // node position within its level
                stack.push((child_half, child_half + 2 * pos, s_lo, mid));
                stack.push((child_half, child_half + 2 * pos + 1, mid + 1, s_hi));
            }
        }
    }
    out
}

/// Length of the overlap of inclusive ranges `[a_lo, a_hi]` and
/// `[b_lo, b_hi]`.
fn overlap(a_lo: u32, a_hi: u32, b_lo: u32, b_hi: u32) -> f64 {
    let lo = a_lo.max(b_lo);
    let hi = a_hi.min(b_hi);
    if lo > hi {
        0.0
    } else {
        (hi - lo + 1) as f64
    }
}

/// Lazy, statistically exact Privelet+ over an arbitrary number of
/// dimensions.
#[derive(Debug, Clone)]
pub struct PriveletPlus {
    columns: Vec<Vec<u32>>,
    pads: Vec<usize>,
    rho: f64,
    epsilon: f64,
    seed: u64,
}

/// Cap on the per-query boundary-tensor size. `(2 log2 1024 + 1)^4 ~ 2e5`
/// so 4-D × 1024-bin domains fit comfortably; an 8-D query would exceed
/// this (as it does for materialised Privelet+ in the paper, which only
/// runs it on low-dimensional data).
const MAX_TENSOR: usize = 4_000_000;

impl PriveletPlus {
    /// Publishes a Privelet+ release over the columnar dataset
    /// (`columns[j]` = attribute `j`), spending `epsilon`.
    ///
    /// `seed` fixes the noisy transform; two estimators with the same data
    /// and seed answer identically.
    pub fn publish(columns: Vec<Vec<u32>>, domains: &[usize], epsilon: Epsilon, seed: u64) -> Self {
        assert_eq!(columns.len(), domains.len(), "one column per dimension");
        assert!(!columns.is_empty(), "need at least one dimension");
        // Coefficient indexes are packed 16 bits per dimension into the
        // u128 noise key; larger domains would silently collide keys and
        // correlate noise across coefficients.
        assert!(
            domains.iter().all(|&d| d <= 1 << 16),
            "Privelet+ supports per-attribute domains up to 65536"
        );
        let pads: Vec<usize> = domains
            .iter()
            .map(|&d| d.max(1).next_power_of_two())
            .collect();
        let rho: f64 = pads
            .iter()
            .map(|&p| f64::from(p.trailing_zeros()) + 1.0)
            .product();
        Self {
            columns,
            pads,
            rho,
            epsilon: epsilon.value(),
            seed,
        }
    }

    /// The generalised sensitivity `rho = prod (log2 pad_i + 1)`.
    pub fn generalized_sensitivity(&self) -> f64 {
        self.rho
    }

    /// Deterministic Laplace noise for the tensor coefficient identified by
    /// `key`, with scale `rho / (epsilon * weight)`.
    fn coefficient_noise(&self, key: u128, weight: f64) -> f64 {
        let u = hash_to_unit(self.seed, key);
        let scale = self.rho / (self.epsilon * weight);
        // Laplace quantile at u in (0,1).
        if u < 0.5 {
            scale * (2.0 * u).ln()
        } else {
            -scale * (2.0 - 2.0 * u).max(f64::MIN_POSITIVE).ln()
        }
    }
}

/// SplitMix64-style hash of `(seed, key)` mapped to a uniform in (0, 1).
fn hash_to_unit(seed: u64, key: u128) -> f64 {
    let mut z = seed ^ (key as u64) ^ ((key >> 64) as u64).rotate_left(31);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 random bits -> (0, 1): add half an ulp so 0 is excluded.
    ((z >> 11) as f64 + 0.5) / 9_007_199_254_740_992.0
}

impl RangeCountEstimator for PriveletPlus {
    fn range_count(&mut self, query: &[DimRange]) -> f64 {
        assert_eq!(query.len(), self.columns.len(), "query arity mismatch");
        let true_count = scan_range_count(&self.columns, query);

        // Per-dimension boundary coefficient lists.
        let items: Vec<Vec<BoundaryItem>> = query
            .iter()
            .zip(&self.pads)
            .map(|(&(lo, hi), &pad)| {
                let hi = (hi as usize).min(pad - 1) as u32;
                if lo > hi {
                    Vec::new()
                } else {
                    boundary_items(lo, hi, pad)
                }
            })
            .collect();
        if items.iter().any(Vec::is_empty) {
            return 0.0; // empty range in some dimension
        }
        let tensor: usize = items.iter().map(Vec::len).product();
        assert!(
            tensor <= MAX_TENSOR,
            "query touches {tensor} coefficients; Privelet+ is only \
             practical in low dimensions (as in the paper)"
        );

        // Walk the tensor product, accumulating noise * phi products.
        let mut noise_sum = 0.0;
        let mut combo = vec![0usize; items.len()];
        loop {
            let mut key: u128 = 0;
            let mut phi = 1.0;
            let mut weight = 1.0;
            for (d, &c) in combo.iter().enumerate() {
                let it = items[d][c];
                key = (key << 16) | u128::from(it.index);
                phi *= it.phi;
                weight *= it.weight;
            }
            noise_sum += self.coefficient_noise(key, weight) * phi;

            // Odometer increment.
            let mut d = items.len();
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                combo[d] += 1;
                if combo[d] < items[d].len() {
                    break;
                }
                combo[d] = 0;
                if d == 0 {
                    return true_count + noise_sum;
                }
            }
        }
    }

    fn dims(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram1D;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn weights_follow_levels() {
        // pad = 8: root weight 8; index 1 (support 8) weight 8;
        // indices 2-3 (support 4) weight 4; 4-7 (support 2) weight 2.
        assert_eq!(coefficient_weight(0, 8), 8.0);
        assert_eq!(coefficient_weight(1, 8), 8.0);
        assert_eq!(coefficient_weight(2, 8), 4.0);
        assert_eq!(coefficient_weight(3, 8), 4.0);
        assert_eq!(coefficient_weight(4, 8), 2.0);
        assert_eq!(coefficient_weight(7, 8), 2.0);
    }

    #[test]
    fn privelet_1d_reconstructs_with_high_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let counts: Vec<f64> = (0..100).map(|i| f64::from(i % 17) * 10.0).collect();
        let out = Privelet1d.publish(&counts, Epsilon::new(100.0).unwrap(), &mut rng);
        assert_eq!(out.len(), 100);
        let max_err = out
            .iter()
            .zip(&counts)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_err < 5.0, "max err {max_err}");
    }

    #[test]
    fn boundary_items_synthesise_exact_range_sums() {
        // With *zero* noise, the boundary decomposition must reproduce the
        // exact range sum: sum_k c_k * phi_k == range_sum.
        let data: Vec<f64> = (0..16).map(|i| f64::from(i * i % 13)).collect();
        let coeffs = haar_forward(&data);
        for lo in 0..16u32 {
            for hi in lo..16u32 {
                let items = boundary_items(lo, hi, 16);
                let via_coeffs: f64 = items
                    .iter()
                    .map(|it| coeffs[it.index as usize] * it.phi)
                    .sum();
                let direct: f64 = data[lo as usize..=hi as usize].iter().sum();
                assert!(
                    (via_coeffs - direct).abs() < 1e-9,
                    "range [{lo},{hi}]: {via_coeffs} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn boundary_items_are_logarithmically_few() {
        let items = boundary_items(300, 700, 1024);
        assert!(items.len() <= 2 * 10 + 1, "got {} items", items.len());
    }

    #[test]
    fn lazy_privelet_is_consistent_across_repeated_queries() {
        let cols = vec![vec![1u32, 5, 9, 3, 7], vec![2u32, 4, 6, 8, 0]];
        let mut p = PriveletPlus::publish(cols, &[10, 10], Epsilon::new(1.0).unwrap(), 42);
        let q = vec![(0u32, 6u32), (2u32, 9u32)];
        let a1 = p.range_count(&q);
        let a2 = p.range_count(&q);
        assert_eq!(a1, a2, "same release must answer identically");
    }

    #[test]
    fn lazy_privelet_high_budget_approaches_truth() {
        let cols = vec![
            (0..200u32).map(|i| i % 32).collect::<Vec<_>>(),
            (0..200u32).map(|i| (i * 7) % 32).collect::<Vec<_>>(),
        ];
        let mut p =
            PriveletPlus::publish(cols.clone(), &[32, 32], Epsilon::new(1_000.0).unwrap(), 7);
        for q in [
            vec![(0u32, 31u32), (0u32, 31u32)],
            vec![(5, 20), (8, 30)],
            vec![(0, 0), (0, 0)],
        ] {
            let truth = scan_range_count(&cols, &q);
            let est = p.range_count(&q);
            assert!((est - truth).abs() < 2.0, "query {q:?}: {est} vs {truth}");
        }
    }

    #[test]
    fn lazy_privelet_noise_scales_with_budget() {
        let cols = vec![vec![0u32; 100], vec![0u32; 100]];
        let q = vec![(0u32, 500u32), (0u32, 500u32)];
        let spread = |eps: f64| -> f64 {
            (0..40)
                .map(|s| {
                    let mut p = PriveletPlus::publish(
                        cols.clone(),
                        &[1000, 1000],
                        Epsilon::new(eps).unwrap(),
                        s,
                    );
                    (p.range_count(&q) - 100.0).abs()
                })
                .sum::<f64>()
                / 40.0
        };
        let loose = spread(10.0);
        let tight = spread(0.1);
        assert!(
            tight > 10.0 * loose,
            "tight {tight} should be much larger than loose {loose}"
        );
    }

    #[test]
    fn lazy_matches_materialised_statistics() {
        // The *distribution* of errors of the lazy simulation must match a
        // materialised Privelet on the same (1-D) data: compare noise
        // standard deviations over many seeds.
        let values: Vec<u32> = (0..500).map(|i| i % 64).collect();
        let hist = Histogram1D::from_values(&values, 64);
        let eps = Epsilon::new(1.0).unwrap();
        let q_lo = 10u32;
        let q_hi = 40u32;
        let truth = hist.range_sum(q_lo, q_hi);

        let mut rng = StdRng::seed_from_u64(0);
        let trials = 300;
        let mat_errs: Vec<f64> = (0..trials)
            .map(|_| {
                let noisy = Privelet1d.publish(hist.counts(), eps, &mut rng);
                let h = Histogram1D::from_counts(noisy);
                h.range_sum(q_lo, q_hi) - truth
            })
            .collect();
        let lazy_errs: Vec<f64> = (0..trials)
            .map(|s| {
                let mut p =
                    PriveletPlus::publish(vec![values.clone()], &[64], eps, s as u64 * 7 + 1);
                p.range_count(&[(q_lo, q_hi)]) - truth
            })
            .collect();
        let sd = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let (s_mat, s_lazy) = (sd(&mat_errs), sd(&lazy_errs));
        assert!(
            (s_mat - s_lazy).abs() / s_mat < 0.35,
            "materialised sd {s_mat} vs lazy sd {s_lazy}"
        );
    }

    #[test]
    fn empty_query_range_returns_zero() {
        let cols = vec![vec![1u32, 2, 3]];
        let mut p = PriveletPlus::publish(cols, &[10], Epsilon::new(1.0).unwrap(), 1);
        assert_eq!(p.range_count(&[(5, 2)]), 0.0);
    }
}
