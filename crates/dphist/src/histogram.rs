//! Exact count histograms: 1-D and (small-domain) N-D, plus range sums.
//!
//! Attribute values across the workspace are integers on `0..domain`
//! (nominal attributes are totally ordered first, as in the paper §5.1).

use crate::DimRange;

/// A one-dimensional count histogram over the domain `0..len`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram1D {
    counts: Vec<f64>,
}

impl Histogram1D {
    /// Builds a histogram of `values` over `0..domain`.
    ///
    /// # Panics
    /// Panics if any value falls outside the domain.
    pub fn from_values(values: &[u32], domain: usize) -> Self {
        let mut counts = vec![0.0; domain];
        for &v in values {
            let v = v as usize;
            assert!(v < domain, "value {v} outside domain {domain}");
            counts[v] += 1.0;
        }
        Self { counts }
    }

    /// Wraps existing (possibly noisy) counts.
    pub fn from_counts(counts: Vec<f64>) -> Self {
        Self { counts }
    }

    /// Domain size (number of bins).
    pub fn domain(&self) -> usize {
        self.counts.len()
    }

    /// The counts slice.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Sum of counts over the inclusive range `[lo, hi]`, clipped to the
    /// domain. Returns 0 for an empty/inverted range.
    pub fn range_sum(&self, lo: u32, hi: u32) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let lo = lo as usize;
        let hi = (hi as usize).min(self.counts.len().saturating_sub(1));
        if lo >= self.counts.len() {
            return 0.0;
        }
        self.counts[lo..=hi].iter().sum()
    }
}

/// A dense N-dimensional count histogram over a small product domain.
///
/// Memory is `prod(domains)` f64s, so this is only for genuinely small
/// grids (the 2-D experiments, the hybrid small-domain partitions). The
/// scalable methods (PSD, lazy Privelet+, FP) never materialise it.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramNd {
    domains: Vec<usize>,
    strides: Vec<usize>,
    counts: Vec<f64>,
}

impl HistogramNd {
    /// Creates an empty histogram over the product of `domains`.
    ///
    /// # Panics
    /// Panics if `domains` is empty, any domain is zero, or the product
    /// exceeds `2^31` cells (guard against accidental multi-GB grids).
    pub fn zeros(domains: &[usize]) -> Self {
        assert!(!domains.is_empty(), "need at least one dimension");
        assert!(domains.iter().all(|&d| d > 0), "zero-sized domain");
        let cells: usize = domains.iter().product();
        assert!(
            cells <= 1 << 31,
            "refusing to materialise {cells} cells; use a scalable estimator"
        );
        // Row-major strides: last dimension contiguous.
        let mut strides = vec![1usize; domains.len()];
        for i in (0..domains.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * domains[i + 1];
        }
        Self {
            domains: domains.to_vec(),
            strides,
            counts: vec![0.0; cells],
        }
    }

    /// Builds the histogram of `rows`, where `rows[j]` is the j-th
    /// attribute column (all columns equally long).
    ///
    /// # Panics
    /// Panics on ragged columns or out-of-domain values.
    pub fn from_columns(columns: &[Vec<u32>], domains: &[usize]) -> Self {
        assert_eq!(columns.len(), domains.len(), "one column per dimension");
        let mut h = Self::zeros(domains);
        let n = columns.first().map_or(0, Vec::len);
        for col in columns {
            assert_eq!(col.len(), n, "ragged columns");
        }
        for row in 0..n {
            let mut idx = 0usize;
            for (j, col) in columns.iter().enumerate() {
                let v = col[row] as usize;
                assert!(v < domains[j], "value {v} outside domain {}", domains[j]);
                idx += v * h.strides[j];
            }
            h.counts[idx] += 1.0;
        }
        h
    }

    /// Per-dimension domain sizes.
    pub fn domains(&self) -> &[usize] {
        &self.domains
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.domains.len()
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.counts.len()
    }

    /// Flat cell counts (row-major).
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Mutable flat cell counts.
    pub fn counts_mut(&mut self) -> &mut [f64] {
        &mut self.counts
    }

    /// Count at the multi-index `idx`.
    pub fn at(&self, idx: &[usize]) -> f64 {
        self.counts[self.flat_index(idx)]
    }

    /// Converts a multi-index into the flat offset.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.domains.len(), "index arity mismatch");
        idx.iter()
            .zip(&self.strides)
            .zip(&self.domains)
            .map(|((&i, &s), &d)| {
                assert!(i < d, "index {i} outside domain {d}");
                i * s
            })
            .sum()
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Exact range-count over the hyper-rectangle `query` (inclusive per
    /// dimension, clipped to the domain).
    pub fn range_sum(&self, query: &[DimRange]) -> f64 {
        assert_eq!(query.len(), self.domains.len(), "query arity mismatch");
        // Recursive walk over dimensions, summing the contiguous last
        // dimension directly.
        fn walk(h: &HistogramNd, query: &[DimRange], dim: usize, base: usize) -> f64 {
            let (lo, hi) = query[dim];
            if lo > hi {
                return 0.0;
            }
            let lo = lo as usize;
            let hi = (hi as usize).min(h.domains[dim] - 1);
            if lo >= h.domains[dim] {
                return 0.0;
            }
            if dim + 1 == h.domains.len() {
                return h.counts[base + lo..=base + hi].iter().sum();
            }
            (lo..=hi)
                .map(|i| walk(h, query, dim + 1, base + i * h.strides[dim]))
                .sum()
        }
        walk(self, query, 0, 0)
    }

    /// The 1-D marginal histogram of dimension `dim`.
    pub fn marginal(&self, dim: usize) -> Histogram1D {
        assert!(dim < self.domains.len(), "dimension out of range");
        let mut m = vec![0.0; self.domains[dim]];
        for (flat, &c) in self.counts.iter().enumerate() {
            let i = (flat / self.strides[dim]) % self.domains[dim];
            m[i] += c;
        }
        Histogram1D::from_counts(m)
    }
}

/// Counts records of a columnar dataset inside a hyper-rectangle by a
/// direct scan — the ground truth `A_act(q)` of the paper's error metric.
pub fn scan_range_count(columns: &[Vec<u32>], query: &[DimRange]) -> f64 {
    assert_eq!(columns.len(), query.len(), "query arity mismatch");
    let n = columns.first().map_or(0, Vec::len);
    let mut count = 0usize;
    'rows: for row in 0..n {
        for (col, &(lo, hi)) in columns.iter().zip(query) {
            let v = col[row];
            if v < lo || v > hi {
                continue 'rows;
            }
        }
        count += 1;
    }
    count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_1d_basics() {
        let h = Histogram1D::from_values(&[0, 1, 1, 3], 4);
        assert_eq!(h.counts(), &[1.0, 2.0, 0.0, 1.0]);
        assert_eq!(h.total(), 4.0);
        assert_eq!(h.range_sum(1, 2), 2.0);
        assert_eq!(h.range_sum(0, 3), 4.0);
        assert_eq!(h.range_sum(2, 1), 0.0);
        assert_eq!(h.range_sum(1, 100), 3.0); // clipped
        assert_eq!(h.range_sum(7, 9), 0.0); // outside
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn histogram_1d_rejects_out_of_domain() {
        let _ = Histogram1D::from_values(&[5], 4);
    }

    #[test]
    fn histogram_nd_indexing() {
        let cols = vec![vec![0u32, 1, 1], vec![2u32, 0, 2]];
        let h = HistogramNd::from_columns(&cols, &[2, 3]);
        assert_eq!(h.cells(), 6);
        assert_eq!(h.at(&[0, 2]), 1.0);
        assert_eq!(h.at(&[1, 0]), 1.0);
        assert_eq!(h.at(&[1, 2]), 1.0);
        assert_eq!(h.at(&[0, 0]), 0.0);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn histogram_nd_range_sum_matches_scan() {
        let cols = vec![
            vec![0u32, 1, 2, 3, 2, 1, 0],
            vec![5u32, 4, 3, 2, 1, 0, 5],
            vec![1u32, 1, 0, 0, 1, 0, 1],
        ];
        let h = HistogramNd::from_columns(&cols, &[4, 6, 2]);
        let queries: Vec<Vec<DimRange>> = vec![
            vec![(0, 3), (0, 5), (0, 1)],
            vec![(1, 2), (1, 4), (1, 1)],
            vec![(0, 0), (5, 5), (1, 1)],
            vec![(2, 1), (0, 5), (0, 1)],
        ];
        for q in &queries {
            assert_eq!(h.range_sum(q), scan_range_count(&cols, q), "query {q:?}");
        }
    }

    #[test]
    fn marginal_projects_correctly() {
        let cols = vec![vec![0u32, 1, 1, 0], vec![0u32, 0, 1, 2]];
        let h = HistogramNd::from_columns(&cols, &[2, 3]);
        let m0 = h.marginal(0);
        assert_eq!(m0.counts(), &[2.0, 2.0]);
        let m1 = h.marginal(1);
        assert_eq!(m1.counts(), &[2.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "refusing to materialise")]
    fn nd_guards_against_huge_grids() {
        let _ = HistogramNd::zeros(&[1 << 16, 1 << 16]);
    }

    #[test]
    fn scan_range_count_empty_dataset() {
        let cols: Vec<Vec<u32>> = vec![vec![], vec![]];
        assert_eq!(scan_range_count(&cols, &[(0, 1), (0, 1)]), 0.0);
    }
}
