//! Barak et al.'s Fourier contingency-table mechanism (PODS 2007) —
//! reference \[2\] of the DPCopula paper ("transforms [the frequency
//! matrix] to the Fourier domain and adds Laplace noise in this domain
//! ... then employs linear programming to create a non-negative frequency
//! matrix").
//!
//! Scope: contingency tables over **binary attributes** (the Boolean cube
//! `{0,1}^d`), which is exactly where the DPCopula hybrid's small-domain
//! partitions live. The appeal of the Fourier domain is *consistency*:
//! any low-order marginal of the cube is a linear function of a few
//! Walsh–Hadamard coefficients, so noising coefficients once yields
//! mutually consistent noisy marginals.
//!
//! Deviation from the original (documented in DESIGN.md): the paper's
//! final linear program for non-negative integrality is replaced by the
//! standard cheap surrogate — clamp negatives to zero and rescale to the
//! noisy total. The DPCopula paper itself skipped Barak in its
//! experiments because of the LP's cost; the surrogate keeps the method
//! usable as a baseline while preserving its Fourier-consistency core.

use crate::{DimRange, RangeCountEstimator};
use dpmech::{laplace_noise, Epsilon};
use mathkit::hadamard::{fwht, ifwht};
use rngkit::Rng;

/// Maximum number of binary attributes (2^20 cells ~ 8 MB).
pub const MAX_BINARY_ATTRIBUTES: usize = 20;

/// A published Barak-style contingency table over binary attributes.
#[derive(Debug, Clone)]
pub struct BarakTable {
    /// Non-negative cell estimates, index bit `j` = attribute `j`'s value.
    cells: Vec<f64>,
    dims: usize,
}

impl BarakTable {
    /// Publishes the full contingency table of binary `columns` under
    /// `epsilon`-DP by noising every Walsh–Hadamard coefficient.
    ///
    /// One record changes one cell by 1; in the orthonormal Fourier basis
    /// that is an L2 change of 1 and an L1 change of at most
    /// `2^{d/2} * 2^{-d/2} * 2^d`... concretely each of the `2^d`
    /// coefficients moves by exactly `2^{-d/2}`, so the coefficient
    /// vector's L1 sensitivity is `2^d * 2^{-d/2} = 2^{d/2}` and each
    /// coefficient gets `Lap(2^{d/2} / epsilon)` noise.
    ///
    /// # Panics
    /// Panics when a column is not binary, columns are ragged/empty, or
    /// `columns.len() > MAX_BINARY_ATTRIBUTES`.
    pub fn publish<R: Rng + ?Sized>(columns: &[Vec<u32>], epsilon: Epsilon, rng: &mut R) -> Self {
        let d = columns.len();
        assert!(d >= 1, "need at least one attribute");
        assert!(
            d <= MAX_BINARY_ATTRIBUTES,
            "at most {MAX_BINARY_ATTRIBUTES} binary attributes"
        );
        let n = columns[0].len();
        for col in columns {
            assert_eq!(col.len(), n, "ragged columns");
            assert!(col.iter().all(|&v| v <= 1), "attributes must be binary");
        }
        let cells_len = 1usize << d;

        // Exact contingency table.
        let mut cells = vec![0.0; cells_len];
        for row in 0..n {
            let mut idx = 0usize;
            for (j, col) in columns.iter().enumerate() {
                idx |= (col[row] as usize) << j;
            }
            cells[idx] += 1.0;
        }

        // Fourier domain: noise every coefficient.
        fwht(&mut cells);
        let scale = (cells_len as f64).sqrt() / epsilon.value();
        for c in &mut cells {
            *c += laplace_noise(rng, scale);
        }
        ifwht(&mut cells);

        // Non-negativity surrogate for the LP: clamp, then rescale to the
        // noisy total (the DC coefficient's estimate of n).
        let noisy_total: f64 = cells.iter().sum();
        let mut clamped: Vec<f64> = cells.iter().map(|&c| c.max(0.0)).collect();
        let clamped_total: f64 = clamped.iter().sum();
        if clamped_total > 0.0 && noisy_total > 0.0 {
            let factor = noisy_total / clamped_total;
            for c in &mut clamped {
                *c *= factor;
            }
        }
        Self {
            cells: clamped,
            dims: d,
        }
    }

    /// Cell estimate at the bit-packed index.
    pub fn cell(&self, idx: usize) -> f64 {
        self.cells[idx]
    }

    /// Total mass of the table.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// The marginal count of attribute `j` taking value 1.
    pub fn marginal_one(&self, j: usize) -> f64 {
        assert!(j < self.dims, "attribute out of range");
        self.cells
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & (1 << j) != 0)
            .map(|(_, &c)| c)
            .sum()
    }
}

impl RangeCountEstimator for BarakTable {
    fn range_count(&mut self, query: &[DimRange]) -> f64 {
        assert_eq!(query.len(), self.dims, "query arity mismatch");
        self.cells
            .iter()
            .enumerate()
            .filter(|(idx, _)| {
                query.iter().enumerate().all(|(j, &(lo, hi))| {
                    let v = ((idx >> j) & 1) as u32;
                    v >= lo && v <= hi
                })
            })
            .map(|(_, &c)| c)
            .sum()
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn binary_data(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        use rngkit::Rng as _;
        let a: Vec<u32> = (0..n).map(|_| u32::from(rng.gen_bool(0.3))).collect();
        // b correlated with a.
        let b: Vec<u32> = a
            .iter()
            .map(|&x| if rng.gen_bool(0.8) { x } else { 1 - x })
            .collect();
        let c: Vec<u32> = (0..n).map(|_| u32::from(rng.gen_bool(0.5))).collect();
        vec![a, b, c]
    }

    #[test]
    fn output_is_non_negative_with_right_total() {
        let cols = binary_data(5_000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let t = BarakTable::publish(&cols, Epsilon::new(1.0).unwrap(), &mut rng);
        assert!(t.cells.iter().all(|&c| c >= 0.0));
        assert!((t.total() - 5_000.0).abs() < 100.0, "total {}", t.total());
    }

    #[test]
    fn marginals_track_truth() {
        let cols = binary_data(20_000, 3);
        let truth: f64 = cols[0].iter().map(|&v| f64::from(v)).sum();
        let mut rng = StdRng::seed_from_u64(4);
        let t = BarakTable::publish(&cols, Epsilon::new(1.0).unwrap(), &mut rng);
        assert!(
            (t.marginal_one(0) - truth).abs() / truth < 0.05,
            "marginal {} vs {truth}",
            t.marginal_one(0)
        );
    }

    #[test]
    fn range_counts_converge_with_huge_budget() {
        let cols = binary_data(3_000, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut t = BarakTable::publish(&cols, Epsilon::new(1e5).unwrap(), &mut rng);
        // Count (a=1, b=1, c anything).
        let truth = cols[0]
            .iter()
            .zip(&cols[1])
            .filter(|(&a, &b)| a == 1 && b == 1)
            .count() as f64;
        let est = t.range_count(&[(1, 1), (1, 1), (0, 1)]);
        assert!((est - truth).abs() < 2.0, "est {est} vs {truth}");
    }

    #[test]
    fn consistency_between_overlapping_marginals() {
        // The Fourier construction's selling point: marginal estimates
        // derived from the same table agree exactly.
        let cols = binary_data(2_000, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut t = BarakTable::publish(&cols, Epsilon::new(0.5).unwrap(), &mut rng);
        // P(a=1) computed two ways: directly, and as sum over b of
        // P(a=1, b).
        let direct = t.marginal_one(0);
        let via_b =
            t.range_count(&[(1, 1), (0, 0), (0, 1)]) + t.range_count(&[(1, 1), (1, 1), (0, 1)]);
        assert!((direct - via_b).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn rejects_non_binary_attributes() {
        let cols = vec![vec![0u32, 2]];
        let mut rng = StdRng::seed_from_u64(9);
        let _ = BarakTable::publish(&cols, Epsilon::new(1.0).unwrap(), &mut rng);
    }

    #[test]
    fn single_attribute_table() {
        let cols = vec![vec![0u32, 1, 1, 1, 0]];
        let mut rng = StdRng::seed_from_u64(10);
        let t = BarakTable::publish(&cols, Epsilon::new(100.0).unwrap(), &mut rng);
        assert!((t.cell(1) - 3.0).abs() < 0.5);
        assert!((t.cell(0) - 2.0).abs() < 0.5);
    }
}
