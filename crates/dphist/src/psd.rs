//! PSD — Private Spatial Decomposition, KD-hybrid flavour (Cormode,
//! Procopiuc, Srivastava, Shen, Yu; ICDE 2012).
//!
//! Builds a KD tree over the *dataset* (so its cost is independent of the
//! domain volume — the reason the paper can run it at 8 dimensions where
//! grid methods die): split dimensions round-robin, choose each split
//! point as a *private median* via the exponential mechanism (utility =
//! negative rank distance to the true median), and release a noisy count
//! at every node with geometrically increasing per-level budget (deeper
//! levels get more, per the ICDE'12 recommendation).
//!
//! Range queries are answered top-down: nodes fully inside contribute
//! their noisy count, partial leaves contribute a uniformity-scaled
//! fraction.

use crate::{DimRange, RangeCountEstimator};
use dpmech::{exponential_mechanism, laplace_noise, Epsilon};
use rngkit::Rng;

/// Tuning parameters for [`Psd`].
#[derive(Debug, Clone, Copy)]
pub struct PsdConfig {
    /// Maximum tree depth (number of split levels).
    pub max_depth: usize,
    /// Stop splitting nodes with fewer (true) points than this.
    pub min_node_size: usize,
    /// Fraction of the budget spent on private medians; the rest goes to
    /// noisy counts.
    pub structure_fraction: f64,
    /// Per-level geometric growth factor of the count budget
    /// (ICDE'12 suggests 2^(1/3)).
    pub budget_growth: f64,
}

impl Default for PsdConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_node_size: 32,
            structure_fraction: 0.3,
            budget_growth: 2f64.powf(1.0 / 3.0),
        }
    }
}

#[derive(Debug)]
struct Node {
    bounds: Vec<DimRange>,
    noisy_count: f64,
    split: Option<Split>,
}

/// Children of a split node; the split dimension and point are implicit in
/// the children's `bounds`.
#[derive(Debug)]
struct Split {
    left: Box<Node>,
    right: Box<Node>,
}

/// A published PSD release.
#[derive(Debug)]
pub struct Psd {
    root: Node,
    dims: usize,
}

impl Psd {
    /// Builds and publishes a PSD over the columnar dataset, spending
    /// `epsilon` in total.
    pub fn publish<R: Rng + ?Sized>(
        columns: &[Vec<u32>],
        domains: &[usize],
        epsilon: Epsilon,
        config: PsdConfig,
        rng: &mut R,
    ) -> Self {
        assert_eq!(columns.len(), domains.len(), "one column per dimension");
        assert!(!columns.is_empty(), "need at least one dimension");
        assert!(
            (0.0..1.0).contains(&config.structure_fraction),
            "structure fraction must be in [0,1)"
        );
        let n = columns[0].len();
        let dims = columns.len();

        // Budget plan. Medians: one per level, nodes at the same level are
        // disjoint (parallel composition), so each level costs its full
        // per-level share once. Counts: geometric allocation over the
        // max_depth+1 levels, also parallel within a level.
        let depth = config.max_depth.max(1);
        let eps_structure = epsilon.value() * config.structure_fraction;
        let eps_median_per_level = eps_structure / depth as f64;
        let eps_counts = epsilon.value() - eps_structure;
        let growth = config.budget_growth;
        let norm: f64 = (0..=depth).map(|l| growth.powi(l as i32)).sum();
        let eps_count_at = |level: usize| eps_counts * growth.powi(level as i32) / norm;

        let bounds: Vec<DimRange> = domains.iter().map(|&d| (0, d as u32 - 1)).collect();
        let idx: Vec<usize> = (0..n).collect();
        let root = build_node(
            columns,
            idx,
            bounds,
            0,
            depth,
            &config,
            eps_median_per_level,
            &eps_count_at,
            rng,
        );
        Self { root, dims }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_node<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    idx: Vec<usize>,
    bounds: Vec<DimRange>,
    level: usize,
    max_depth: usize,
    config: &PsdConfig,
    eps_median: f64,
    eps_count_at: &dyn Fn(usize) -> f64,
    rng: &mut R,
) -> Node {
    let eps_c = eps_count_at(level);
    let noisy_count = idx.len() as f64 + laplace_noise(rng, 1.0 / eps_c);

    // Decide whether to split. The decision uses the *noisy* count so it
    // does not leak: stopping rules based on private values are safe.
    let splittable_dims: Vec<usize> = bounds
        .iter()
        .enumerate()
        .filter(|(_, &(lo, hi))| hi > lo)
        .map(|(d, _)| d)
        .collect();
    if level >= max_depth || noisy_count < config.min_node_size as f64 || splittable_dims.is_empty()
    {
        return Node {
            bounds,
            noisy_count,
            split: None,
        };
    }

    // Round-robin over dimensions that still have extent.
    let dim = splittable_dims[level % splittable_dims.len()];
    let (lo, hi) = bounds[dim];
    let value = private_median(columns, &idx, dim, lo, hi, eps_median, rng);

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.into_iter().partition(|&i| columns[dim][i] <= value);

    let mut left_bounds = bounds.clone();
    left_bounds[dim] = (lo, value);
    let mut right_bounds = bounds.clone();
    right_bounds[dim] = (value + 1, hi);

    let left = build_node(
        columns,
        left_idx,
        left_bounds,
        level + 1,
        max_depth,
        config,
        eps_median,
        eps_count_at,
        rng,
    );
    let right = build_node(
        columns,
        right_idx,
        right_bounds,
        level + 1,
        max_depth,
        config,
        eps_median,
        eps_count_at,
        rng,
    );
    Node {
        bounds,
        noisy_count,
        split: Some(Split {
            left: Box::new(left),
            right: Box::new(right),
        }),
    }
}

/// Exponential-mechanism private median of `columns[dim]` restricted to
/// `idx`, over candidate split values `lo..hi` (a split at `v` sends
/// values `<= v` left). Utility is the negative rank distance to `n/2`;
/// its sensitivity is 1.
fn private_median<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    idx: &[usize],
    dim: usize,
    lo: u32,
    hi: u32,
    eps: f64,
    rng: &mut R,
) -> u32 {
    debug_assert!(hi > lo);
    // counts[v - lo] = number of points with value v.
    let width = (hi - lo) as usize + 1;
    let mut counts = vec![0usize; width];
    for &i in idx {
        let v = columns[dim][i].clamp(lo, hi);
        counts[(v - lo) as usize] += 1;
    }
    let half = idx.len() as f64 / 2.0;
    // Candidates are lo..hi (split at hi would make an empty right side).
    let mut below = 0usize; // points <= candidate
    let scores: Vec<f64> = (0..width - 1)
        .map(|off| {
            below += counts[off];
            -((below as f64) - half).abs()
        })
        .collect();
    let eps = Epsilon::new(eps.max(1e-12)).expect("positive eps");
    let pick = exponential_mechanism(rng, &scores, eps, 1.0);
    lo + pick as u32
}

fn query_node(node: &Node, query: &[DimRange]) -> f64 {
    // Relationship between the query and this node's bounds.
    let mut fully_inside = true;
    let mut volume_frac = 1.0;
    for (d, &(q_lo, q_hi)) in query.iter().enumerate() {
        let (b_lo, b_hi) = node.bounds[d];
        if q_lo > q_hi || q_hi < b_lo || q_lo > b_hi {
            return 0.0; // disjoint
        }
        let o_lo = q_lo.max(b_lo);
        let o_hi = q_hi.min(b_hi);
        if o_lo > b_lo || o_hi < b_hi {
            fully_inside = false;
        }
        volume_frac *= f64::from(o_hi - o_lo + 1) / f64::from(b_hi - b_lo + 1);
    }
    if fully_inside {
        return node.noisy_count;
    }
    match &node.split {
        Some(s) => query_node(&s.left, query) + query_node(&s.right, query),
        // Partial leaf: uniformity assumption within the leaf.
        None => node.noisy_count * volume_frac,
    }
}

impl RangeCountEstimator for Psd {
    fn range_count(&mut self, query: &[DimRange]) -> f64 {
        assert_eq!(query.len(), self.dims, "query arity mismatch");
        query_node(&self.root, query)
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::scan_range_count;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn grid_data(n: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
        // Two clustered columns.
        let mut rng = StdRng::seed_from_u64(seed);
        use rngkit::Rng as _;
        let c0: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain / 4)).collect();
        let c1: Vec<u32> = (0..n)
            .map(|_| rng.gen_range(3 * domain / 4..domain))
            .collect();
        vec![c0, c1]
    }

    #[test]
    fn private_median_finds_centre_with_big_budget() {
        let col: Vec<u32> = (0..101).collect();
        let cols = vec![col];
        let idx: Vec<usize> = (0..101).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let m = private_median(&cols, &idx, 0, 0, 100, 100.0, &mut rng);
        assert!((45..=55).contains(&m), "median {m}");
    }

    #[test]
    fn full_domain_query_close_to_n() {
        let cols = grid_data(5_000, 100, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut psd = Psd::publish(
            &cols,
            &[100, 100],
            Epsilon::new(5.0).unwrap(),
            PsdConfig::default(),
            &mut rng,
        );
        let q = vec![(0u32, 99u32), (0u32, 99u32)];
        let est = psd.range_count(&q);
        assert!((est - 5_000.0).abs() < 100.0, "estimate {est}");
    }

    #[test]
    fn partial_queries_track_truth_with_generous_budget() {
        let cols = grid_data(20_000, 64, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut psd = Psd::publish(
            &cols,
            &[64, 64],
            Epsilon::new(20.0).unwrap(),
            PsdConfig::default(),
            &mut rng,
        );
        for q in [
            vec![(0u32, 15u32), (48u32, 63u32)],
            vec![(0, 31), (0, 63)],
            vec![(10, 50), (10, 50)],
        ] {
            let truth = scan_range_count(&cols, &q);
            let est = psd.range_count(&q);
            let denom = truth.max(100.0);
            assert!(
                (est - truth).abs() / denom < 0.25,
                "query {q:?}: est {est}, truth {truth}"
            );
        }
    }

    #[test]
    fn disjoint_query_is_zero() {
        let cols = grid_data(1_000, 32, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut psd = Psd::publish(
            &cols,
            &[32, 32],
            Epsilon::new(1.0).unwrap(),
            PsdConfig::default(),
            &mut rng,
        );
        // Inverted range.
        assert_eq!(psd.range_count(&[(5, 2), (0, 31)]), 0.0);
    }

    #[test]
    fn works_in_higher_dimensions() {
        // The whole point of PSD in the paper: it scales past 2-D.
        let mut rng = StdRng::seed_from_u64(8);
        use rngkit::Rng as _;
        let n = 3_000;
        let cols: Vec<Vec<u32>> = (0..6)
            .map(|_| (0..n).map(|_| rng.gen_range(0..1000u32)).collect())
            .collect();
        let domains = vec![1000usize; 6];
        let mut psd = Psd::publish(
            &cols,
            &domains,
            Epsilon::new(1.0).unwrap(),
            PsdConfig::default(),
            &mut rng,
        );
        let q: Vec<DimRange> = vec![(0, 999); 6];
        let est = psd.range_count(&q);
        assert!((est - n as f64).abs() < 200.0, "estimate {est}");
    }
}
