//! # dphist — differentially private histogram publication
//!
//! The histogram substrate of the DPCopula reproduction. DPCopula itself
//! only needs *one-dimensional* DP marginal histograms (Algorithm 1/4,
//! step 1) — but the paper's evaluation compares against four
//! general-purpose multi-dimensional DP histogram methods, so this crate
//! implements all of them from scratch:
//!
//! * [`histogram`] — plain 1-D / N-D count histograms with range sums;
//! * [`identity`] — the Dwork Laplace-per-bin baseline;
//! * [`efpa`] — EFPA (Ács, Castelluccia, Chen; ICDM 2012): Fourier
//!   perturbation with exponential-mechanism selection of the number of
//!   retained coefficients. This is the method DPCopula uses for its
//!   margins;
//! * [`privelet`] — Privelet / Privelet+ (Xiao, Wang, Gehrke; ICDE 2010):
//!   Haar-wavelet noise with per-level calibration, including a
//!   statistically exact *lazy* multi-dimensional variant that never
//!   materialises the full grid;
//! * [`psd`] — Private Spatial Decomposition, KD-hybrid flavour (Cormode
//!   et al.; ICDE 2012): private-median KD tree with geometric budget
//!   allocation;
//! * [`php`] — P-HP (Ács et al.; ICDM 2012): hierarchical bisection
//!   minimising L1 error through the exponential mechanism;
//! * [`fp`] — Filter Priority (Cormode, Procopiuc, Srivastava, Tran;
//!   ICDT 2012): sparse summaries with threshold filtering.
//!
//! One-dimensional methods implement [`Publish1d`]; multi-dimensional
//! estimators implement [`RangeCountEstimator`].

#![warn(missing_docs)]

pub mod barak;
pub mod efpa;
pub mod efpa_dct;
pub mod fp;
pub mod hierarchical;
pub mod histogram;
pub mod identity;
pub mod noisefirst;
pub mod php;
pub mod prefix;
pub mod privelet;
pub mod psd;
pub mod registry;
pub mod structurefirst;

pub use histogram::{Histogram1D, HistogramNd};
pub use registry::{MarginCtor, MarginRegistry, RegistryError};

use dpmech::Epsilon;
use rngkit::RngCore;

/// A 1-D DP histogram publication algorithm: consumes exact counts, spends
/// `epsilon`, returns noisy counts of the same length.
///
/// The trait is object-safe (the generator is passed as `&mut dyn
/// RngCore`, which carries the full [`rngkit::Rng`] API through rngkit's
/// blanket impl) so publishers can be boxed and dispatched from the
/// [`registry::MarginRegistry`]. Concrete generators coerce at the call
/// site: `Efpa.publish(&counts, eps, &mut rng)` works for any
/// `rng: impl RngCore`.
pub trait Publish1d {
    /// Publishes a DP version of the exact `counts` under `epsilon`-DP.
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64>;

    /// Human-readable algorithm name for experiment reports.
    fn name(&self) -> &'static str;
}

/// An inclusive per-dimension range `[lo, hi]` on the integer domain of an
/// attribute.
pub type DimRange = (u32, u32);

/// A published multi-dimensional DP structure that can answer range-count
/// queries (one inclusive interval per dimension).
///
/// `range_count` takes `&mut self` because the lazy estimators
/// (Privelet+'s on-demand coefficient noise, FP's false-positive cache)
/// memoise noise draws so repeated queries see a consistent release.
pub trait RangeCountEstimator {
    /// Estimated number of records inside the hyper-rectangle `query`
    /// (one `[lo, hi]` interval per dimension, inclusive).
    fn range_count(&mut self, query: &[DimRange]) -> f64;

    /// Number of dimensions this estimator answers over.
    fn dims(&self) -> usize;
}
