//! The margin-method registry: every 1-D DP histogram publisher the
//! synthesizer can use, in one place.
//!
//! The DPCopula synthesizer used to dispatch margin publication through a
//! hand-rolled enum match; adding a method meant touching the enum, the
//! match, and every exhaustive listing. Now a method registers here once
//! — a `(name, constructor)` pair — and every consumer (the synthesizer's
//! `MarginMethod`, experiment harnesses, ablation sweeps) resolves it by
//! name.
//!
//! # Registering a new margin method
//!
//! 1. implement [`Publish1d`] for your type in its own module;
//! 2. add one `("your-name", || Box::new(YourType::default()))` line to
//!    [`MarginRegistry::builtin`];
//! 3. (optional) expose it in the synthesizer's `MarginMethod` enum if it
//!    should be constructible from the paper-facing config API.
//!
//! Custom out-of-tree methods can instead be added at runtime with
//! [`MarginRegistry::register`] on an owned registry.

use crate::efpa::Efpa;
use crate::efpa_dct::EfpaDct;
use crate::hierarchical::Hierarchical;
use crate::identity::Identity;
use crate::noisefirst::NoiseFirst;
use crate::php::Php;
use crate::privelet::Privelet1d;
use crate::structurefirst::StructureFirst;
use crate::Publish1d;
use dpmech::Epsilon;
use rngkit::RngCore;

/// A constructor producing a boxed margin publisher. Plain function
/// pointers keep registry entries `Copy` and `'static`, so a registry can
/// be built anywhere (including inside worker threads) without
/// synchronisation.
pub type MarginCtor = fn() -> Box<dyn Publish1d>;

/// Errors from registry mutation.
///
/// Non-exhaustive: registry growth (aliases, capability checks) may add
/// variants, so downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// A method is already registered under this name. Silently replacing
    /// it would let two subsystems fight over a name and whichever
    /// registered last would win — a provenance hazard for model
    /// artifacts, which validate their recorded margin method by name.
    DuplicateMethod {
        /// The contested name.
        name: &'static str,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateMethod { name } => {
                write!(f, "margin method `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A name-indexed collection of margin-publisher constructors.
#[derive(Clone)]
pub struct MarginRegistry {
    entries: Vec<(&'static str, MarginCtor)>,
}

impl std::fmt::Debug for MarginRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarginRegistry")
            .field("methods", &self.names())
            .finish()
    }
}

impl MarginRegistry {
    /// An empty registry (for fully custom method sets).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The built-in registry: every margin method this workspace ships.
    /// **This list is the single place a new in-tree method is added.**
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        for (name, ctor) in [
            (
                "efpa",
                (|| Box::new(Efpa) as Box<dyn Publish1d>) as MarginCtor,
            ),
            ("efpa-dct", || Box::new(EfpaDct)),
            ("identity", || Box::new(Identity)),
            ("privelet", || Box::new(Privelet1d)),
            ("php", || Box::new(Php::default())),
            ("hierarchical", || Box::new(Hierarchical)),
            ("noisefirst", || Box::new(NoiseFirst::default())),
            ("structurefirst", || Box::new(StructureFirst::default())),
        ] {
            r.register(name, ctor)
                .expect("builtin names are pairwise distinct");
        }
        r
    }

    /// Adds a method under `name`. A name can be registered only once:
    /// registering a second constructor under an existing name fails with
    /// [`RegistryError::DuplicateMethod`] and leaves the registry
    /// unchanged, so no consumer can silently hijack a method another
    /// subsystem (or a stored artifact's provenance) resolves by name.
    pub fn register(&mut self, name: &'static str, ctor: MarginCtor) -> Result<(), RegistryError> {
        if self.contains(name) {
            return Err(RegistryError::DuplicateMethod { name });
        }
        self.entries.push((name, ctor));
        Ok(())
    }

    /// Constructs the publisher registered under `name`.
    pub fn get(&self, name: &str) -> Option<Box<dyn Publish1d>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ctor)| ctor())
    }

    /// Registered method names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Whether a method is registered under `name` — the check a model
    /// artifact's recorded margin-method provenance is validated against
    /// at load time.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| *n == name)
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Publishes `counts` with the method registered under `name`.
    /// Returns `None` when no such method exists.
    pub fn publish(
        &self,
        name: &str,
        counts: &[f64],
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Option<Vec<f64>> {
        self.get(name).map(|p| p.publish(counts, epsilon, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn builtin_lists_all_eight_methods() {
        let r = MarginRegistry::builtin();
        assert_eq!(r.len(), 8);
        for name in [
            "efpa",
            "efpa-dct",
            "identity",
            "privelet",
            "php",
            "hierarchical",
            "noisefirst",
            "structurefirst",
        ] {
            let p = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(!p.name().is_empty());
        }
        assert!(r.get("no-such-method").is_none());
    }

    #[test]
    fn registry_publish_round_trips() {
        let r = MarginRegistry::builtin();
        let counts = vec![5.0; 32];
        let eps = Epsilon::new(1.0).unwrap();
        for name in r.names() {
            let mut rng = StdRng::seed_from_u64(1);
            let noisy = r.publish(name, &counts, eps, &mut rng).unwrap();
            assert_eq!(noisy.len(), counts.len(), "{name}");
            assert!(noisy.iter().all(|v| v.is_finite()), "{name}");
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut r = MarginRegistry::empty();
        assert!(r.is_empty());
        r.register("identity", || Box::new(Identity)).unwrap();
        // A second registration under the same name must fail loudly
        // (the old behaviour silently replaced the constructor, letting
        // the last writer win) and must not disturb the registry.
        let err = r.register("identity", || Box::new(Efpa)).unwrap_err();
        assert_eq!(err, RegistryError::DuplicateMethod { name: "identity" });
        assert!(err.to_string().contains("identity"), "{err}");
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("identity").unwrap().name(), "identity");
        r.register("efpa", || Box::new(Efpa)).unwrap();
        assert_eq!(r.names(), vec!["identity", "efpa"]);
    }

    #[test]
    fn boxed_publisher_is_deterministic_per_seed() {
        let r = MarginRegistry::builtin();
        let counts = vec![3.0; 16];
        let eps = Epsilon::new(0.5).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            r.publish("efpa", &counts, eps, &mut rng).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
