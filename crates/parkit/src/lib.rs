//! # parkit — deterministic scoped-thread parallelism
//!
//! The workspace's parallel substrate: a work-stealing parallel map built
//! on [`std::thread::scope`] (no external dependencies) whose output is
//! **bit-identical at any worker count**, plus the index-keyed RNG stream
//! derivation that makes stochastic stages reproducible in parallel.
//!
//! ## The determinism contract
//!
//! Two rules make a parallel pipeline reproduce its serial output exactly:
//!
//! 1. **Results are keyed by logical index.** [`par_map`] returns
//!    `out[i] = f(i, &items[i])` in input order no matter which worker ran
//!    task `i` or in what order tasks finished.
//! 2. **Randomness is keyed by logical index, never by thread.** A task
//!    that needs noise derives its generator with [`stream_rng`] from
//!    `(base_seed, stream, index)` — attribute id, pair id, row-chunk id —
//!    so the draw sequence a task sees is a pure function of *what* it
//!    computes, not *where* it runs.
//!
//! Under these rules `workers = 1` and `workers = 64` produce the same
//! bytes, which is what the serial-vs-parallel equivalence tests in
//! `crates/core` pin down.
//!
//! ```
//! let squares = parkit::par_map(4, &[1u64, 2, 3, 4, 5], |i, &v| (i as u64, v * v));
//! assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16), (4, 25)]);
//! ```

#![warn(missing_docs)]

use obskit::names::{
    PARKIT_TASKS_TOTAL, PARKIT_TASK_NS, PARKIT_WORKER_BUSY_NS, PARKIT_WORKER_IDLE_NS,
};
use obskit::{MetricsSink, Stopwatch, Unit};
use rngkit::rngs::StdRng;
use rngkit::{RngCore, SeedableRng, SplitMix64};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Default worker count: the `PARKIT_WORKERS` environment variable when
/// set (and positive), otherwise [`std::thread::available_parallelism`].
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("PARKIT_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the generator for logical task `index` of logical `stream`
/// under `base_seed`.
///
/// The derivation is three chained SplitMix64 scrambles (the same
/// seeding discipline as [`StdRng::seed_from_u64`]), so nearby
/// `(stream, index)` pairs land on statistically independent xoshiro
/// states. It is a pure function — independent of worker count,
/// scheduling, and call order — which is what the parallel pipeline's
/// determinism contract rests on.
pub fn stream_rng(base_seed: u64, stream: u64, index: u64) -> StdRng {
    let mut sm = SplitMix64::new(base_seed);
    let root = sm.next_u64();
    let mut sm = SplitMix64::new(root ^ stream);
    let branch = sm.next_u64();
    let mut sm = SplitMix64::new(branch ^ index);
    StdRng::seed_from_u64(sm.next_u64())
}

/// Splits `0..n` into contiguous ranges of at most `chunk` elements (the
/// last range may be shorter). `chunk == 0` is treated as 1; `n == 0`
/// yields no ranges.
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// One sampling task of a row *window*: the intersection of the absolute
/// chunk `id` (rows `id*chunk .. (id+1)*chunk` of the conceptually
/// infinite row space) with a requested window, as produced by
/// [`chunk_windows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkWindow {
    /// Absolute chunk id — the value that keys the chunk's RNG stream.
    pub id: usize,
    /// Rows of this chunk to generate-and-discard before the window
    /// starts (the window begins mid-chunk).
    pub skip: usize,
    /// Rows of this chunk inside the window.
    pub take: usize,
}

/// The row window `[offset, offset + n)` does not fit the `usize` row
/// space: `offset + n` overflows. Before this guard, the unchecked
/// addition panicked in debug builds and silently wrapped in release —
/// a wrapped `end` made [`chunk_windows`] return windows for the wrong
/// rows (or none at all), which a sharded deployment would serve as
/// data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOverflow {
    /// Start of the requested window.
    pub offset: usize,
    /// Requested row count.
    pub n: usize,
}

impl std::fmt::Display for WindowOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "row window [{}, {} + {}) overflows the addressable row space",
            self.offset, self.offset, self.n
        )
    }
}

impl std::error::Error for WindowOverflow {}

/// Splits the absolute row window `[offset, offset + n)` into the
/// chunk-aligned tasks of the fixed-`chunk` grid over `0..`. Each task
/// names its absolute chunk `id` plus how many leading rows of that
/// chunk fall before the window (`skip`) and how many are inside it
/// (`take`).
///
/// Because ids are absolute, a window's rows are the same bytes whether
/// they are produced by one call over `[0, N)` or any split
/// `[0, k)` + `[k, N)` — the foundation of the fit-once/sample-many
/// serving contract. `chunk == 0` is treated as 1; `n == 0` yields no
/// windows (including at `offset == usize::MAX`, the
/// offset-exactly-at-the-end edge); a window whose end `offset + n`
/// would overflow `usize` is rejected instead of wrapping.
pub fn try_chunk_windows(
    offset: usize,
    n: usize,
    chunk: usize,
) -> Result<Vec<ChunkWindow>, WindowOverflow> {
    let chunk = chunk.max(1);
    if n == 0 {
        return Ok(Vec::new());
    }
    let end = offset.checked_add(n).ok_or(WindowOverflow { offset, n })?;
    let first = offset / chunk;
    let last = (end - 1) / chunk;
    let mut out = Vec::with_capacity(last - first + 1);
    for id in first..=last {
        let chunk_start = id * chunk;
        let lo = chunk_start.max(offset);
        let hi = chunk_start.saturating_add(chunk).min(end);
        out.push(ChunkWindow {
            id,
            skip: lo - chunk_start,
            take: hi - lo,
        });
    }
    Ok(out)
}

/// Infallible [`try_chunk_windows`] for windows known to fit the row
/// space (every in-tree caller bounds `offset + n` by a dataset size).
///
/// # Panics
/// Panics with a descriptive message when `offset + n` overflows, in
/// debug *and* release builds — never wraps. Callers taking untrusted
/// window requests (the CLI, serving front-ends) should use
/// [`try_chunk_windows`] and surface the error instead.
pub fn chunk_windows(offset: usize, n: usize, chunk: usize) -> Vec<ChunkWindow> {
    try_chunk_windows(offset, n, chunk).unwrap_or_else(|e| panic!("{e}"))
}

/// Applies `f(index, &items[index])` to every item on up to `workers`
/// scoped threads and returns the results **in input order**.
///
/// Tasks are claimed from a shared atomic counter (work stealing), so an
/// expensive item does not serialise the items behind it; each result is
/// slotted back by its index, making the output independent of worker
/// count and scheduling. `workers <= 1`, an empty input, or a single item
/// run inline on the caller's thread with no spawn overhead.
///
/// # Panics
/// Re-raises the first worker panic on the calling thread.
pub fn par_map<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, u) in bucket {
            debug_assert!(slots[i].is_none(), "task {i} computed twice");
            slots[i] = Some(u);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index claimed exactly once"))
        .collect()
}

/// [`par_map`] with per-chunk observability: records, into `sink` under
/// the `stage` label, the logical task count (`parkit_tasks_total`), a
/// per-task latency histogram (`parkit_task_ns`), total busy
/// nanoseconds across workers (`parkit_worker_busy_ns`), and the
/// residual idle/queue/spawn time (`parkit_worker_idle_ns` — effective
/// workers × fan-out wall time, minus busy time).
///
/// The mapping itself is exactly [`par_map`] — same output, same
/// determinism contract. Only the `Count`-unit task counter is part of
/// the deterministic snapshot; latencies are wall-clock. A disabled
/// sink skips straight to [`par_map`] with no timing reads at all.
pub fn par_map_observed<T, U, F>(
    workers: usize,
    items: &[T],
    sink: &MetricsSink,
    stage: &str,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if !sink.enabled() {
        return par_map(workers, items, f);
    }
    let n = items.len();
    let labels = [("stage", stage)];
    sink.add_labeled(PARKIT_TASKS_TOTAL, &labels, Unit::Count, n as u64);
    let busy_ns = AtomicU64::new(0);
    let wall = Stopwatch::start();
    let out = par_map(workers, items, |i, t| {
        let task = Stopwatch::start();
        let u = f(i, t);
        let ns = task.elapsed_ns();
        busy_ns.fetch_add(ns, Ordering::Relaxed);
        sink.observe_labeled(PARKIT_TASK_NS, &labels, Unit::Nanos, ns);
        u
    });
    let wall_ns = wall.elapsed_ns();
    let effective = workers.clamp(1, n.max(1)) as u64;
    let busy = busy_ns.load(Ordering::Relaxed);
    sink.add_labeled(PARKIT_WORKER_BUSY_NS, &labels, Unit::Nanos, busy);
    sink.add_labeled(
        PARKIT_WORKER_IDLE_NS,
        &labels,
        Unit::Nanos,
        effective.saturating_mul(wall_ns).saturating_sub(busy),
    );
    out
}

/// A boxed unit of work for a [`TaskPool`].
type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads draining a shared job
/// queue — the substrate for workloads whose tasks *arrive over time*
/// (accepted connections of a serving daemon) rather than existing up
/// front like [`par_map`]'s slice.
///
/// Jobs are claimed in FIFO order by whichever worker frees up first. A
/// job that panics is caught and discarded so one bad request cannot
/// shrink the pool; the panic is reported on stderr. Dropping the pool
/// closes the queue, lets the workers drain every job already submitted,
/// and joins them — no job accepted by [`TaskPool::execute`] is lost.
///
/// The pool makes no determinism promise: unlike [`par_map`], job
/// *effects* happen in whatever order workers get to them. Anything that
/// must be reproducible (noise, sampling) still derives its randomness
/// from logical indices via [`stream_rng`], never from arrival order.
pub struct TaskPool {
    queue: Option<std::sync::mpsc::Sender<PoolJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    pending: std::sync::Arc<AtomicUsize>,
}

/// A bounded submission was refused: the pool already had `pending`
/// jobs queued or running, at or above the caller's `depth` bound.
/// The job was **not** enqueued; the caller sheds it (a serving
/// front-end answers 503) instead of queueing unboundedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSaturated {
    /// Jobs queued or running at the moment of refusal.
    pub pending: usize,
    /// The caller's bound.
    pub depth: usize,
}

impl std::fmt::Display for PoolSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task pool saturated: {} jobs pending at depth bound {}",
            self.pending, self.depth
        )
    }
}

impl std::error::Error for PoolSaturated {}

/// A reserved pending slot of a [`TaskPool`], returned by
/// [`TaskPool::try_reserve`]. Consume it with [`PoolPermit::submit`];
/// dropping it unused releases the slot.
pub struct PoolPermit<'a> {
    pool: &'a TaskPool,
    armed: bool,
}

impl PoolPermit<'_> {
    /// Enqueues `job` against the reserved slot.
    pub fn submit(mut self, job: impl FnOnce() + Send + 'static) {
        self.armed = false;
        self.pool.send_reserved(Box::new(job));
    }
}

impl Drop for PoolPermit<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.pool.pending.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

impl TaskPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = std::sync::mpsc::channel::<PoolJob>();
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = std::sync::Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("parkit-pool-{i}"))
                    .spawn(move || loop {
                        // The lock guards only the receive; the job runs
                        // with the queue free for other workers.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => {
                                let run =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                                if run.is_err() {
                                    eprintln!("parkit: pool job panicked (worker continues)");
                                }
                            }
                            // Sender dropped: queue is closed and drained.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn parkit pool worker")
            })
            .collect();
        Self {
            queue: Some(tx),
            workers: handles,
            pending: std::sync::Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued or running (submitted but not finished).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Enqueues `job`; some worker will run it. Never blocks on the
    /// workers and never refuses — the queue is unbounded. Callers
    /// wanting back-pressure use [`TaskPool::try_reserve`] /
    /// [`TaskPool::try_submit`] instead.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.send_reserved(Box::new(job));
    }

    /// Reserves a pending slot if fewer than `depth` jobs are queued
    /// or running, refusing with [`PoolSaturated`] otherwise. The
    /// reservation counts toward [`TaskPool::pending`] until the
    /// permit is submitted (and its job finishes) or dropped — so a
    /// caller can decide what to move into the job *after* admission
    /// (a serving accept loop sheds the connection on refusal instead
    /// of losing it inside a rejected closure).
    pub fn try_reserve(&self, depth: usize) -> Result<PoolPermit<'_>, PoolSaturated> {
        let depth = depth.max(1);
        let mut current = self.pending.load(Ordering::Acquire);
        loop {
            if current >= depth {
                return Err(PoolSaturated {
                    pending: current,
                    depth,
                });
            }
            match self.pending.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(PoolPermit {
                        pool: self,
                        armed: true,
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Bounded-depth submission: enqueues `job` if fewer than `depth`
    /// jobs are queued or running, refusing with [`PoolSaturated`]
    /// (and dropping `job`) otherwise. Convenience over
    /// [`TaskPool::try_reserve`] for jobs that own nothing worth
    /// salvaging on refusal.
    pub fn try_submit(
        &self,
        depth: usize,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), PoolSaturated> {
        let permit = self.try_reserve(depth)?;
        permit.submit(job);
        Ok(())
    }

    /// Sends a job whose pending slot is already counted; the wrapper
    /// releases the slot when the job finishes, even by panic.
    fn send_reserved(&self, job: PoolJob) {
        struct SlotGuard(std::sync::Arc<AtomicUsize>);
        impl Drop for SlotGuard {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let guard = SlotGuard(std::sync::Arc::clone(&self.pending));
        self.queue
            .as_ref()
            .expect("pool queue open until drop")
            .send(Box::new(move || {
                let _slot = guard;
                job();
            }))
            .expect("pool workers outlive the queue");
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        drop(self.queue.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Fallible [`par_map`]: runs every task to completion and returns either
/// all results in input order or the error of the **lowest-indexed**
/// failing task — deterministic even when several tasks fail.
pub fn try_par_map<T, U, E, F>(workers: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let mut first_err: Option<(usize, E)> = None;
    let mut out = Vec::with_capacity(items.len());
    for (i, r) in par_map(workers, items, f).into_iter().enumerate() {
        match r {
            Ok(u) => out.push(u),
            Err(e) => {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::RngCore;

    #[test]
    fn par_map_matches_serial_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| i as u64 * 3 + v)
            .collect();
        for workers in [1, 2, 3, 7, 16, 1000] {
            let par = par_map(workers, &items, |i, &v| i as u64 * 3 + v);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(8, &empty, |_, &v| v), Vec::<u32>::new());
        assert_eq!(par_map(8, &[9u32], |i, &v| v + i as u32), vec![9]);
    }

    #[test]
    fn uneven_task_durations_do_not_reorder_output() {
        // Early indices sleep longest; a finish-order bug would reverse.
        let items: Vec<u64> = (0..24).collect();
        let out = par_map(4, &items, |i, &v| {
            std::thread::sleep(std::time::Duration::from_micros(
                (items.len() - i) as u64 * 50,
            ));
            v * 10
        });
        assert_eq!(out, items.iter().map(|v| v * 10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task panic propagates")]
    fn worker_panics_propagate() {
        let items = vec![0u32; 16];
        let _ = par_map(4, &items, |i, _| {
            if i == 7 {
                panic!("task panic propagates");
            }
            i
        });
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 3, 8] {
            let r: Result<Vec<usize>, usize> =
                try_par_map(
                    workers,
                    &items,
                    |i, &v| {
                        if i % 10 == 3 {
                            Err(i)
                        } else {
                            Ok(v)
                        }
                    },
                );
            assert_eq!(r.unwrap_err(), 3, "workers={workers}");
        }
        let ok: Result<Vec<usize>, usize> = try_par_map(4, &items, |_, &v| Ok(v));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn stream_rng_is_pure_and_separates_streams() {
        let a1 = stream_rng(42, 1, 0).next_u64();
        let a2 = stream_rng(42, 1, 0).next_u64();
        assert_eq!(a1, a2, "same key, same stream");
        assert_ne!(a1, stream_rng(42, 1, 1).next_u64(), "index separates");
        assert_ne!(a1, stream_rng(42, 2, 0).next_u64(), "stream separates");
        assert_ne!(a1, stream_rng(43, 1, 0).next_u64(), "seed separates");
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for (n, chunk) in [
            (0usize, 4usize),
            (1, 4),
            (4, 4),
            (5, 4),
            (1000, 256),
            (3, 0),
        ] {
            let ranges = chunk_ranges(n, chunk);
            let mut covered = vec![0u32; n];
            for r in &ranges {
                assert!(r.end <= n && r.start < r.end || n == 0);
                for i in r.clone() {
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "n={n} chunk={chunk}");
            if n > 0 {
                assert_eq!(ranges.len(), n.div_ceil(chunk.max(1)));
            } else {
                assert!(ranges.is_empty());
            }
        }
    }

    #[test]
    fn chunk_windows_cover_the_window_exactly() {
        for (offset, n, chunk) in [
            (0usize, 10usize, 4usize),
            (3, 10, 4),
            (4, 8, 4),
            (5, 1, 4),
            (1000, 513, 256),
            (7, 0, 4),
            (2, 3, 0),
        ] {
            let windows = chunk_windows(offset, n, chunk);
            let c = chunk.max(1);
            // Reconstruct covered rows; they must be offset..offset+n.
            let mut covered = Vec::new();
            for w in &windows {
                assert!(w.skip + w.take <= c, "window exceeds chunk size");
                let start = w.id * c + w.skip;
                covered.extend(start..start + w.take);
            }
            let expect: Vec<usize> = (offset..offset + n).collect();
            assert_eq!(covered, expect, "offset={offset} n={n} chunk={chunk}");
            if n == 0 {
                assert!(windows.is_empty());
            }
        }
    }

    #[test]
    fn chunk_windows_agree_with_chunk_ranges_at_offset_zero() {
        // At offset 0 the window grid is exactly the chunk_ranges grid:
        // same ids, no skips, same lengths.
        for (n, chunk) in [(10usize, 4usize), (4, 4), (1000, 256), (5, 64)] {
            let windows = chunk_windows(0, n, chunk);
            let ranges = chunk_ranges(n, chunk);
            assert_eq!(windows.len(), ranges.len());
            for (w, r) in windows.iter().zip(&ranges) {
                assert_eq!(w.id * chunk, r.start);
                assert_eq!(w.skip, 0);
                assert_eq!(w.take, r.len());
            }
        }
    }

    #[test]
    fn chunk_windows_split_is_seamless() {
        // Any split point produces the same chunk ids/rows as one call.
        let whole = chunk_windows(0, 100, 8);
        for k in [1usize, 7, 8, 9, 50, 99] {
            let mut rows_split = Vec::new();
            for w in chunk_windows(0, k, 8)
                .iter()
                .chain(&chunk_windows(k, 100 - k, 8))
            {
                let start = w.id * 8 + w.skip;
                rows_split.extend(start..start + w.take);
            }
            let mut rows_whole = Vec::new();
            for w in &whole {
                let start = w.id * 8 + w.skip;
                rows_whole.extend(start..start + w.take);
            }
            assert_eq!(rows_split, rows_whole, "split at {k}");
        }
    }

    #[test]
    fn try_chunk_windows_rejects_overflowing_windows() {
        let err = try_chunk_windows(usize::MAX - 3, 10, 8).unwrap_err();
        assert_eq!(
            err,
            WindowOverflow {
                offset: usize::MAX - 3,
                n: 10
            }
        );
        assert!(err.to_string().contains("overflows"), "{err}");
        // Zero-length at the very end, and a window ending exactly at
        // usize::MAX, are both representable.
        assert!(try_chunk_windows(usize::MAX, 0, 8).unwrap().is_empty());
        let fit = try_chunk_windows(usize::MAX - 4, 4, 8).unwrap();
        assert_eq!(fit.iter().map(|w| w.take).sum::<usize>(), 4);
    }

    #[test]
    #[should_panic(expected = "overflows the addressable row space")]
    fn chunk_windows_panics_instead_of_wrapping() {
        let _ = chunk_windows(usize::MAX, 2, 8);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn task_pool_runs_every_submitted_job() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = TaskPool::new(4);
            assert_eq!(pool.workers(), 4);
            for _ in 0..100 {
                let done = Arc::clone(&done);
                pool.execute(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop drains the queue before joining.
        }
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn task_pool_survives_panicking_jobs() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = TaskPool::new(2);
            for i in 0..20 {
                let done = Arc::clone(&done);
                pool.execute(move || {
                    if i % 5 == 0 {
                        panic!("job {i} fails");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // 4 of 20 panic; the other 16 still run to completion.
        assert_eq!(done.load(Ordering::SeqCst), 16);
    }

    /// Polls until the pool's pending count drains to `want` (bounded
    /// wait; the jobs in these tests finish in microseconds once
    /// released).
    fn wait_pending(pool: &TaskPool, want: usize) {
        for _ in 0..2000 {
            if pool.pending() == want {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("pool never drained to {want} (pending={})", pool.pending());
    }

    #[test]
    fn try_submit_saturates_at_depth_one_and_recovers_after_drain() {
        use std::sync::mpsc::channel;
        let pool = TaskPool::new(2);
        let (release, gate) = channel::<()>();
        let (started_tx, started) = channel::<()>();
        pool.try_submit(1, move || {
            started_tx.send(()).unwrap();
            gate.recv().unwrap();
        })
        .expect("empty pool admits at depth 1");
        started
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("job runs");

        // One job in flight: depth 1 refuses, naming both numbers.
        let refused = pool.try_submit(1, || {}).unwrap_err();
        assert_eq!(
            refused,
            PoolSaturated {
                pending: 1,
                depth: 1
            }
        );
        assert!(refused.to_string().contains("depth bound 1"), "{refused}");
        // Depth 0 is clamped to 1, never a free pass.
        assert!(pool.try_submit(0, || {}).is_err());
        // The unbounded path still accepts (and raises pending).
        let (done_tx, done) = channel::<()>();
        pool.execute(move || done_tx.send(()).unwrap());
        done.recv_timeout(std::time::Duration::from_secs(10))
            .expect("unbounded job still runs");

        // Draining the blocked job reopens bounded admission.
        release.send(()).unwrap();
        wait_pending(&pool, 0);
        assert!(pool.try_submit(1, || {}).is_ok());
        wait_pending(&pool, 0);
    }

    #[test]
    fn try_submit_counts_queued_and_running_jobs_at_depth_four() {
        use std::sync::mpsc::channel;
        use std::sync::Arc;
        // One worker: job 1 runs, jobs 2-4 queue; all four count.
        let pool = TaskPool::new(1);
        let (release, gate) = channel::<()>();
        let gate = Arc::new(std::sync::Mutex::new(gate));
        let (started_tx, started) = channel::<()>();
        for i in 0..4 {
            let gate = Arc::clone(&gate);
            let started_tx = started_tx.clone();
            pool.try_submit(4, move || {
                if i == 0 {
                    started_tx.send(()).unwrap();
                }
                gate.lock().unwrap().recv().unwrap();
            })
            .unwrap_or_else(|e| panic!("job {i} refused: {e}"));
        }
        started
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("first job running");
        assert_eq!(pool.pending(), 4);
        let refused = pool.try_submit(4, || {}).unwrap_err();
        assert_eq!(
            refused,
            PoolSaturated {
                pending: 4,
                depth: 4
            }
        );
        // A larger bound still admits over the same backlog.
        let (done_tx, done) = channel::<()>();
        pool.try_submit(5, move || done_tx.send(()).unwrap())
            .expect("depth 5 admits the fifth job");
        for _ in 0..5 {
            release.send(()).unwrap();
        }
        done.recv_timeout(std::time::Duration::from_secs(10))
            .expect("backlog drains in order");
        wait_pending(&pool, 0);
        assert!(pool.try_submit(4, || {}).is_ok());
        wait_pending(&pool, 0);
    }

    #[test]
    fn dropped_permit_releases_its_slot_and_panics_release_too() {
        let pool = TaskPool::new(1);
        {
            let _permit = pool.try_reserve(1).expect("reserve");
            assert_eq!(pool.pending(), 1);
            assert!(pool.try_reserve(1).is_err(), "slot held by live permit");
        }
        assert_eq!(pool.pending(), 0, "dropped permit releases");

        // A panicking job must release its slot on unwind.
        pool.try_submit(1, || panic!("job panics"))
            .expect("admitted before the panic");
        wait_pending(&pool, 0);
        assert!(pool.try_submit(1, || {}).is_ok());
        wait_pending(&pool, 0);
    }

    #[test]
    fn task_pool_clamps_to_one_worker() {
        let pool = TaskPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.execute(move || tx.send(7u32).expect("receiver alive"));
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(7));
    }

    #[test]
    fn par_map_observed_matches_par_map_and_records() {
        use std::sync::Arc;
        let items: Vec<u64> = (0..37).collect();
        let plain = par_map(4, &items, |i, &v| i as u64 + v * v);

        // Disabled sink: identical output, nothing recorded.
        let off = MetricsSink::off();
        assert_eq!(
            par_map_observed(4, &items, &off, "margins", |i, &v| i as u64 + v * v),
            plain
        );

        let registry = Arc::new(obskit::MetricsRegistry::new());
        let sink = MetricsSink::to_registry(registry.clone());
        for workers in [1usize, 3, 8] {
            let observed =
                par_map_observed(workers, &items, &sink, "margins", |i, &v| i as u64 + v * v);
            assert_eq!(observed, plain, "workers={workers}");
        }
        let snap = registry.snapshot();
        let tasks = snap
            .get(r#"parkit_tasks_total{stage="margins"}"#)
            .and_then(|e| e.value.as_u64());
        assert_eq!(tasks, Some(3 * items.len() as u64));
        let lat = snap
            .get(r#"parkit_task_ns{stage="margins"}"#)
            .and_then(|e| e.value.as_hist())
            .expect("latency histogram recorded");
        assert_eq!(lat.count, 3 * items.len() as u64);
        assert!(snap
            .get(r#"parkit_worker_busy_ns{stage="margins"}"#)
            .is_some());
        assert!(snap
            .get(r#"parkit_worker_idle_ns{stage="margins"}"#)
            .is_some());
    }
}
