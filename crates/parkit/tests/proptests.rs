//! Property tests for the parkit determinism contract: the parallel map
//! must preserve input ordering and match the serial map bit-for-bit at
//! every worker count, and chunking must partition the index space.

use testkit::prop::vec;
use testkit::{prop_assert, prop_assert_eq, property_tests};

property_tests! {
    /// `par_map` preserves input ordering: out[i] is f(i, items[i]), for
    /// arbitrary inputs and worker counts (including workers > tasks).
    fn par_map_preserves_input_ordering(
        items in vec(0u64..1_000_000, 0..80),
        workers in 1usize..12,
    ) {
        let serial: Vec<(usize, u64)> =
            items.iter().enumerate().map(|(i, &v)| (i, v.wrapping_mul(31))).collect();
        let par = parkit::par_map(workers, &items, |i, &v| (i, v.wrapping_mul(31)));
        prop_assert_eq!(par, serial);
    }

    /// Per-task RNG draws depend only on the logical index, so the noise
    /// a task sees is identical at any worker count.
    fn stream_rng_draws_are_worker_count_invariant(
        n in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        use rngkit::RngCore;
        let items: Vec<u64> = (0..n as u64).collect();
        let draw = |_i: usize, &idx: &u64| parkit::stream_rng(seed, 7, idx).next_u64();
        let one = parkit::par_map(1, &items, draw);
        let many = parkit::par_map(5, &items, draw);
        prop_assert_eq!(one, many);
    }

    /// `chunk_ranges` partitions 0..n: every index covered exactly once,
    /// in order, with every chunk at most `chunk` long.
    fn chunk_ranges_partition_the_index_space(
        n in 0usize..5_000,
        chunk in 0usize..600,
    ) {
        let ranges = parkit::chunk_ranges(n, chunk);
        let mut expect = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, expect);
            prop_assert!(r.end > r.start, "empty chunk");
            prop_assert!(r.end - r.start <= chunk.max(1), "oversized chunk");
            expect = r.end;
        }
        prop_assert_eq!(expect, n);
    }
}
