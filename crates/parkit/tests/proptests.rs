//! Property tests for the parkit determinism contract: the parallel map
//! must preserve input ordering and match the serial map bit-for-bit at
//! every worker count, and chunking must partition the index space.

use testkit::prop::vec;
use testkit::{prop_assert, prop_assert_eq, property_tests};

property_tests! {
    /// `par_map` preserves input ordering: out[i] is f(i, items[i]), for
    /// arbitrary inputs and worker counts (including workers > tasks).
    fn par_map_preserves_input_ordering(
        items in vec(0u64..1_000_000, 0..80),
        workers in 1usize..12,
    ) {
        let serial: Vec<(usize, u64)> =
            items.iter().enumerate().map(|(i, &v)| (i, v.wrapping_mul(31))).collect();
        let par = parkit::par_map(workers, &items, |i, &v| (i, v.wrapping_mul(31)));
        prop_assert_eq!(par, serial);
    }

    /// Per-task RNG draws depend only on the logical index, so the noise
    /// a task sees is identical at any worker count.
    fn stream_rng_draws_are_worker_count_invariant(
        n in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        use rngkit::RngCore;
        let items: Vec<u64> = (0..n as u64).collect();
        let draw = |_i: usize, &idx: &u64| parkit::stream_rng(seed, 7, idx).next_u64();
        let one = parkit::par_map(1, &items, draw);
        let many = parkit::par_map(5, &items, draw);
        prop_assert_eq!(one, many);
    }

    /// `chunk_ranges` partitions 0..n: every index covered exactly once,
    /// in order, with every chunk at most `chunk` long.
    fn chunk_ranges_partition_the_index_space(
        n in 0usize..5_000,
        chunk in 0usize..600,
    ) {
        let ranges = parkit::chunk_ranges(n, chunk);
        let mut expect = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, expect);
            prop_assert!(r.end > r.start, "empty chunk");
            prop_assert!(r.end - r.start <= chunk.max(1), "oversized chunk");
            expect = r.end;
        }
        prop_assert_eq!(expect, n);
    }

    /// `chunk_windows` covers exactly the rows [offset, offset + n), in
    /// order, each window staying inside its chunk of the absolute grid.
    fn chunk_windows_cover_the_window_in_order(
        offset in 0usize..100_000,
        n in 0usize..5_000,
        chunk in 0usize..600,
    ) {
        let c = chunk.max(1);
        let windows = parkit::try_chunk_windows(offset, n, chunk).unwrap();
        let mut expect = offset;
        for w in &windows {
            prop_assert!(w.take > 0, "empty window task");
            prop_assert!(w.skip + w.take <= c, "window exceeds its chunk");
            prop_assert_eq!(w.id * c + w.skip, expect);
            expect += w.take;
        }
        prop_assert_eq!(expect, offset + n);
        if n == 0 {
            prop_assert!(windows.is_empty(), "zero-length window yields tasks");
        }
    }

    /// Splitting a window at any interior point produces the same chunk
    /// tasks (ids, skips, takes) as covering it whole — the serving
    /// contract that lets shards stitch bit-identically.
    fn chunk_windows_split_is_seamless_anywhere(
        offset in 0usize..10_000,
        n in 1usize..2_000,
        chunk in 1usize..300,
        cut in 0usize..2_000,
    ) {
        let cut = cut.min(n);
        let whole = parkit::try_chunk_windows(offset, n, chunk).unwrap();
        let head = parkit::try_chunk_windows(offset, cut, chunk).unwrap();
        let tail = parkit::try_chunk_windows(offset + cut, n - cut, chunk).unwrap();
        let rows = |ws: &[parkit::ChunkWindow]| -> Vec<usize> {
            ws.iter()
                .flat_map(|w| {
                    let start = w.id * chunk + w.skip;
                    start..start + w.take
                })
                .collect()
        };
        let mut stitched = rows(&head);
        stitched.extend(rows(&tail));
        prop_assert_eq!(stitched, rows(&whole));
    }

    /// Edge cases near the end of the addressable row space: a window
    /// whose end would overflow is rejected (never wraps into serving
    /// the wrong rows), while a window ending exactly at `usize::MAX`
    /// and any zero-length window at the very end are fine.
    fn chunk_windows_guard_the_row_space_end(
        back in 1usize..5_000,
        n in 0usize..10_000,
        chunk in 0usize..600,
    ) {
        let offset = usize::MAX - back;
        let r = parkit::try_chunk_windows(offset, n, chunk);
        if n > back {
            prop_assert_eq!(r.unwrap_err(), parkit::WindowOverflow { offset, n });
        } else {
            let windows = r.unwrap();
            let covered: usize = windows.iter().map(|w| w.take).sum();
            prop_assert_eq!(covered, n);
        }
        // Offset exactly at the end of the row space: empty is fine,
        // any positive length overflows.
        prop_assert!(parkit::try_chunk_windows(usize::MAX, 0, chunk).unwrap().is_empty());
        prop_assert!(parkit::try_chunk_windows(usize::MAX, 1, chunk).is_err());
    }
}
