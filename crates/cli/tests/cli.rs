//! End-to-end tests of the `dpcopula-cli` binary: the full
//! gen → fit → inspect → sample → eval loop through real files and real
//! process boundaries, including the bit-identity contract between
//! serving a saved artifact and in-process synthesis.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dpcopula-cli"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("spawn dpcopula-cli")
}

fn run_ok(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "`dpcopula-cli {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// A scratch directory removed on drop, unique per test.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dpcopula_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn gen_small(dir: &Scratch, name: &str) -> String {
    let csv = dir.path(name);
    run_ok(&["gen", "--out", &csv, "--records", "1500", "--seed", "7"]);
    csv
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_is_an_error() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_writes_a_readable_census_csv() {
    let dir = Scratch::new("gen");
    let csv = gen_small(&dir, "census.csv");
    let text = std::fs::read_to_string(&csv).unwrap();
    let header = text.lines().next().unwrap();
    assert!(header.contains(':'), "header carries domains: {header}");
    assert_eq!(text.lines().count(), 1501, "header + 1500 rows");
}

#[test]
fn fit_sample_matches_synth_byte_for_byte() {
    let dir = Scratch::new("roundtrip");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");
    let served = dir.path("served.csv");
    let synthed = dir.path("synthed.csv");
    let common = ["--epsilon", "1.0", "--seed", "99"];

    run_ok(&[&["fit", "--input", &csv, "--out", &model][..], &common[..]].concat());
    run_ok(&[
        "sample",
        "--model",
        &model,
        "--out",
        &served,
        "--rows",
        "1000",
        "--workers",
        "3",
    ]);
    run_ok(
        &[
            &[
                "synth", "--input", &csv, "--out", &synthed, "--rows", "1000",
            ][..],
            &common[..],
        ]
        .concat(),
    );

    let a = std::fs::read(&served).unwrap();
    let b = std::fs::read(&synthed).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "served artifact rows must equal in-process synthesis");
}

#[test]
fn sample_windows_stitch_across_separate_invocations() {
    let dir = Scratch::new("windows");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");
    run_ok(&["fit", "--input", &csv, "--out", &model, "--seed", "5"]);
    let whole = dir.path("whole.csv");
    let head = dir.path("head.csv");
    let tail = dir.path("tail.csv");
    run_ok(&[
        "sample", "--model", &model, "--out", &whole, "--rows", "800",
    ]);
    run_ok(&[
        "sample",
        "--model",
        &model,
        "--out",
        &head,
        "--rows",
        "300",
        "--workers",
        "2",
    ]);
    run_ok(&[
        "sample",
        "--model",
        &model,
        "--out",
        &tail,
        "--rows",
        "500",
        "--offset",
        "300",
        "--workers",
        "7",
    ]);

    let whole = std::fs::read_to_string(&whole).unwrap();
    let head = std::fs::read_to_string(&head).unwrap();
    let tail = std::fs::read_to_string(&tail).unwrap();
    let stitched: Vec<&str> = head
        .lines()
        .chain(tail.lines().skip(1)) // second header
        .collect();
    let expected: Vec<&str> = whole.lines().collect();
    assert_eq!(stitched, expected, "shards must stitch to the whole window");
}

#[test]
fn inspect_reports_sections_and_budget() {
    let dir = Scratch::new("inspect");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");
    run_ok(&["fit", "--input", &csv, "--out", &model, "--epsilon", "0.5"]);
    let report = run_ok(&["inspect", "--model", &model]);
    for needle in [
        "format v1",
        "schema",
        "margins",
        "correlation",
        "budget",
        "provenance",
        "margin method: efpa",
        "copula family: gaussian",
        "spent 0.500000",
    ] {
        assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
    }
}

#[test]
fn sharded_fit_matches_single_shard_budget_and_serves() {
    let dir = Scratch::new("sharded");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");
    let out = run_ok(&[
        "fit",
        "--input",
        &csv,
        "--out",
        &model,
        "--shards",
        "4",
        "--seed",
        "11",
        "--workers",
        "2",
    ]);
    assert!(out.contains("shards 4"), "{out}");
    assert!(out.contains("spent epsilon 1.000000"), "{out}");

    // The sharded artifact carries per-shard provenance (format v2) and
    // still serves rows like any other model.
    let report = run_ok(&["inspect", "--model", &model]);
    for needle in [
        "format v2",
        "shard 0",
        "shard 3",
        "parallel-composed",
        "rows [0, 375)",
        "seed index 3",
        "spent 1.000000",
    ] {
        assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
    }
    let served = dir.path("served.csv");
    run_ok(&[
        "sample", "--model", &model, "--out", &served, "--rows", "200",
    ]);
    assert_eq!(
        std::fs::read_to_string(&served).unwrap().lines().count(),
        201
    );
}

#[test]
fn explicit_shard_inputs_concatenate_and_fit() {
    let dir = Scratch::new("multi_input");
    let a = dir.path("a.csv");
    let b = dir.path("b.csv");
    run_ok(&["gen", "--out", &a, "--records", "700", "--seed", "1"]);
    run_ok(&["gen", "--out", &b, "--records", "500", "--seed", "2"]);
    let model = dir.path("model.dpcm");
    let out = run_ok(&[
        "fit", "--input", &a, "--input", &b, "--out", &model, "--seed", "9",
    ]);
    // --shards defaults to the input count; rows pool across files.
    assert!(out.contains("from 1200 records"), "{out}");
    assert!(out.contains("shards 2"), "{out}");
    let report = run_ok(&["inspect", "--model", &model]);
    assert!(report.contains("rows [600, 1200)"), "{report}");
}

#[test]
fn shard_misuse_is_a_named_error_not_a_panic() {
    let dir = Scratch::new("shard_errors");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");

    // Zero shards: no partition to fit.
    let out = run(&["fit", "--input", &csv, "--out", &model, "--shards", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("at least one shard"),
        "error should name the problem: {stderr}"
    );

    // More shards than records: some shard would be empty.
    let out = run(&["fit", "--input", &csv, "--out", &model, "--shards", "2000"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("2000 shards requested but only 1500 records"),
        "error should count the shortfall: {stderr}"
    );

    // Estimators without a mergeable summary refuse to shard.
    for method in ["mle", "spearman"] {
        let out = run(&[
            "fit", "--input", &csv, "--out", &model, "--shards", "2", "--method", method,
        ]);
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("no mergeable summary"),
            "{method}: {stderr}"
        );
    }
    assert!(
        !Path::new(&model).exists(),
        "no artifact from a refused fit"
    );
}

#[test]
fn mismatched_shard_schemas_are_refused_with_the_culprit_named() {
    let dir = Scratch::new("shard_schema");
    // 4 US-census attributes vs 8 Brazil-census attributes.
    let us = dir.path("us.csv");
    let br = dir.path("br.csv");
    run_ok(&["gen", "--out", &us, "--records", "400", "--seed", "1"]);
    run_ok(&[
        "gen",
        "--out",
        &br,
        "--dataset",
        "brazil-census",
        "--records",
        "400",
        "--seed",
        "1",
    ]);
    let out = run(&[
        "fit",
        "--input",
        &us,
        "--input",
        &br,
        "--out",
        &dir.path("m.dpcm"),
    ]);
    assert!(!out.status.success(), "mismatched schemas must be refused");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("shard 1 schema does not match shard 0") && stderr.contains("br.csv"),
        "error should name the disagreeing shard and file: {stderr}"
    );
}

#[test]
fn corrupt_artifact_is_rejected_with_precise_error() {
    let dir = Scratch::new("corrupt");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");
    run_ok(&["fit", "--input", &csv, "--out", &model]);

    let mut bytes = std::fs::read(&model).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&model, &bytes).unwrap();

    for args in [
        vec![
            "sample",
            "--model",
            &model,
            "--out",
            &dir.path("x.csv"),
            "--rows",
            "10",
        ],
        vec!["inspect", "--model", &model],
    ] {
        let args: Vec<&str> = args.iter().map(|s| s.as_ref()).collect();
        let out = run(&args);
        assert!(!out.status.success(), "corrupt model must be refused");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("offset") || stderr.contains("checksum"),
            "error should localise the damage: {stderr}"
        );
    }
    assert!(
        !Path::new(&dir.path("x.csv")).exists(),
        "no output from a refused model"
    );
}

#[test]
fn eval_scores_a_release_against_its_source() {
    let dir = Scratch::new("eval");
    let csv = gen_small(&dir, "census.csv");
    let synthed = dir.path("synthed.csv");
    run_ok(&[
        "synth",
        "--input",
        &csv,
        "--out",
        &synthed,
        "--epsilon",
        "2.0",
        "--seed",
        "3",
    ]);
    let report = run_ok(&[
        "eval",
        "--synthetic",
        &synthed,
        "--reference",
        &csv,
        "--queries",
        "50",
        "--seed",
        "1",
    ]);
    assert!(report.contains("queries 50"), "{report}");
    assert!(report.contains("mean relative error"), "{report}");
}

#[test]
fn eval_refuses_a_schema_mismatch() {
    let dir = Scratch::new("eval_schema");
    // Two real generators with incompatible schemas: 4 US-census
    // attributes vs 8 Brazil-census attributes.
    let us = dir.path("us.csv");
    let br = dir.path("br.csv");
    run_ok(&["gen", "--out", &us, "--records", "400", "--seed", "1"]);
    run_ok(&[
        "gen",
        "--out",
        &br,
        "--dataset",
        "brazil-census",
        "--records",
        "400",
        "--seed",
        "1",
    ]);
    let out = run(&["eval", "--synthetic", &us, "--reference", &br]);
    assert!(!out.status.success(), "mismatched schemas must be refused");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("schema mismatch"),
        "error should name the problem: {stderr}"
    );
}

#[test]
fn missing_input_files_fail_with_the_path_in_the_message() {
    let dir = Scratch::new("missing");
    let ghost = dir.path("does_not_exist");
    for args in [
        vec!["fit", "--input", &ghost, "--out", &dir.path("m.dpcm")],
        vec![
            "sample",
            "--model",
            &ghost,
            "--out",
            &dir.path("x.csv"),
            "--rows",
            "10",
        ],
        vec!["inspect", "--model", &ghost],
        vec!["synth", "--input", &ghost, "--out", &dir.path("y.csv")],
        vec!["eval", "--synthetic", &ghost, "--reference", &ghost],
    ] {
        let args: Vec<&str> = args.iter().map(|s| s.as_ref()).collect();
        let out = run(&args);
        assert!(
            !out.status.success(),
            "{:?} with a missing file must fail",
            args[0]
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("does_not_exist"),
            "`{}` error should name the missing path: {stderr}",
            args[0]
        );
    }
}

#[test]
fn truncated_artifact_is_refused_with_a_section_name() {
    let dir = Scratch::new("truncated");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");
    run_ok(&["fit", "--input", &csv, "--out", &model, "--seed", "5"]);

    // Cut the file mid-payload: the loader must report the section it
    // ran out of bytes in, not panic or misparse.
    let mut bytes = std::fs::read(&model).unwrap();
    bytes.truncate(bytes.len() / 3);
    std::fs::write(&model, &bytes).unwrap();

    for args in [
        vec![
            "sample",
            "--model",
            &model,
            "--out",
            &dir.path("x.csv"),
            "--rows",
            "10",
        ],
        vec!["inspect", "--model", &model],
    ] {
        let args: Vec<&str> = args.iter().map(|s| s.as_ref()).collect();
        let out = run(&args);
        assert!(!out.status.success(), "truncated model must be refused");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("truncated") && stderr.contains("section"),
            "error should name the truncated section: {stderr}"
        );
    }
}

/// Splits a written CSV into `shards` contiguous part files on the
/// engine's shard boundaries (the first `n % shards` shards take one
/// extra row), returning the part paths.
fn split_csv(dir: &Scratch, csv: &str, shards: usize) -> Vec<String> {
    let text = std::fs::read_to_string(csv).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    let rows: Vec<&str> = lines.collect();
    let n = rows.len();
    let base = n / shards;
    let extra = n % shards;
    let mut start = 0;
    (0..shards)
        .map(|i| {
            let len = base + usize::from(i < extra);
            let path = dir.path(&format!("part{i}.csv"));
            let mut part = String::from(header);
            part.push('\n');
            for row in &rows[start..start + len] {
                part.push_str(row);
                part.push('\n');
            }
            std::fs::write(&path, part).unwrap();
            start += len;
            path
        })
        .collect()
}

#[test]
fn fit_shard_plus_merge_reproduces_fit_shards_byte_for_byte() {
    let dir = Scratch::new("distfit");
    let csv = gen_small(&dir, "census.csv");
    let reference = dir.path("reference.dpcm");
    run_ok(&[
        "fit",
        "--input",
        &csv,
        "--out",
        &reference,
        "--shards",
        "4",
        "--seed",
        "11",
        "--epsilon",
        "1.0",
    ]);

    // Four independent worker invocations, one part each.
    let parts = split_csv(&dir, &csv, 4);
    let mut dpcs = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        let out = dir.path(&format!("part{i}.dpcs"));
        let index = i.to_string();
        let stdout = run_ok(&[
            "fit-shard",
            "--input",
            part,
            "--out",
            &out,
            "--shard-index",
            &index,
            "--shards",
            "4",
            "--total-rows",
            "1500",
            "--seed",
            "11",
            "--epsilon",
            "1.0",
        ]);
        assert!(
            stdout.contains(&format!("fitted shard {i} of 4")),
            "{stdout}"
        );
        dpcs.push(out);
    }

    let merged = dir.path("merged.dpcm");
    let stdout = run_ok(
        &[
            &["merge"][..],
            &dpcs.iter().map(|s| s.as_str()).collect::<Vec<_>>()[..],
            &["--out", &merged][..],
        ]
        .concat(),
    );
    assert!(stdout.contains("merged 4 shard artifacts"), "{stdout}");
    assert!(stdout.contains("spent epsilon 1.000000"), "{stdout}");

    let a = std::fs::read(&merged).unwrap();
    let b = std::fs::read(&reference).unwrap();
    assert_eq!(
        a, b,
        "merged .dpcm must equal single-process fit --shards 4"
    );
}

#[test]
fn fit_shard_misuse_and_merge_misuse_are_named_errors() {
    let dir = Scratch::new("distfit_errors");
    let csv = gen_small(&dir, "census.csv");

    // The part's rows must match the declared shard window exactly.
    let out = run(&[
        "fit-shard",
        "--input",
        &csv,
        "--out",
        &dir.path("x.dpcs"),
        "--shard-index",
        "0",
        "--shards",
        "4",
        "--total-rows",
        "1500",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("holds 1500 rows") && stderr.contains("covers 375"),
        "error should count the mismatch: {stderr}"
    );

    // Non-mergeable estimators are refused before any rows stream.
    let out = run(&[
        "fit-shard",
        "--input",
        &csv,
        "--out",
        &dir.path("x.dpcs"),
        "--shard-index",
        "0",
        "--shards",
        "1",
        "--total-rows",
        "1500",
        "--method",
        "mle",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no mergeable summary"), "{stderr}");

    // Merge with a missing part names the wrong count.
    let parts = split_csv(&dir, &csv, 2);
    let mut dpcs = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        let out = dir.path(&format!("part{i}.dpcs"));
        let index = i.to_string();
        run_ok(&[
            "fit-shard",
            "--input",
            part,
            "--out",
            &out,
            "--shard-index",
            &index,
            "--shards",
            "2",
            "--total-rows",
            "1500",
        ]);
        dpcs.push(out);
    }
    let out = run(&["merge", &dpcs[0], "--out", &dir.path("m.dpcm")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 shard artifacts provided") && stderr.contains("declared as 2 shards"),
        "error should count declared vs provided: {stderr}"
    );

    // A duplicated part names the culprit file.
    let out = run(&["merge", &dpcs[0], &dpcs[0], "--out", &dir.path("m.dpcm")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("claims shard index") && stderr.contains("part0.dpcs"),
        "error should name the duplicate: {stderr}"
    );

    // A corrupted .dpcs is rejected with section + offset, not a panic.
    let mut bytes = std::fs::read(&dpcs[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&dpcs[1], &bytes).unwrap();
    let out = run(&["merge", &dpcs[0], &dpcs[1], "--out", &dir.path("m.dpcm")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("offset") || stderr.contains("checksum"),
        "error should localise the damage: {stderr}"
    );

    // Empty merge is refused.
    let out = run(&["merge", "--out", &dir.path("m.dpcm")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("at least one"), "{stderr}");

    assert!(
        !Path::new(&dir.path("m.dpcm")).exists(),
        "no artifact from a refused merge"
    );
}

#[test]
fn overflowing_sample_window_is_a_clean_error() {
    let dir = Scratch::new("overflow");
    let csv = gen_small(&dir, "census.csv");
    let model = dir.path("model.dpcm");
    run_ok(&["fit", "--input", &csv, "--out", &model, "--seed", "5"]);

    // offset + rows wraps usize: must surface as a diagnosable error,
    // never a panic or a silently wrapped window.
    let out = run(&[
        "sample",
        "--model",
        &model,
        "--out",
        &dir.path("x.csv"),
        "--rows",
        "100",
        "--offset",
        "18446744073709551615",
    ]);
    assert!(!out.status.success(), "overflowing window must be refused");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("overflows the addressable row space"),
        "error should explain the overflow: {stderr}"
    );
    assert!(
        !Path::new(&dir.path("x.csv")).exists(),
        "no output from a refused window"
    );
}
