//! `dpcopula-cli` — fit-once/sample-many front-end over `.dpcm` model
//! artifacts.
//!
//! The binary wires the workspace end to end: `gen` writes a census CSV,
//! `fit` spends the privacy budget once and persists the released model
//! as a `.dpcm` artifact, `inspect` prints what an artifact contains
//! without sampling from it, `sample` serves any row window from a saved
//! artifact (free post-processing), `synth` runs the classic one-shot
//! fit-and-sample pipeline in process, `eval` scores a synthetic CSV
//! against a reference with random range-count queries, and `serve`
//! runs the `dpcopula-serve` HTTP daemon over a model directory.
//!
//! Determinism contract: `fit` + `sample --offset 0 --rows n` produces
//! byte-for-byte the CSV `synth` emits for the same input, seed, and
//! engine options — which `scripts/ci.sh` checks with a literal `diff`.

use dpcopula::kendall::SamplingStrategy;
use dpcopula::mle::PartitionStrategy;
use dpcopula::synthesizer::{CorrelationMethod, DpCopulaConfig, MarginMethod};
use dpcopula::{DpCopulaError, EngineOptions, FittedModel, SamplingProfile, SynthesisRequest};
use dpmech::Epsilon;
use obskit::{MetricsRegistry, MetricsSink};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
dpcopula-cli — differentially private data synthesis over .dpcm artifacts

USAGE:
  dpcopula-cli gen     --out FILE [--dataset us-census|brazil-census]
                       [--records N] [--seed S]
  dpcopula-cli fit     --input FILE [--input FILE ...] --out FILE
                       [--epsilon E] [--seed S] [--shards N]
                       [--method kendall|mle|spearman] [--margin NAME]
                       [--k RATIO] [--workers W] [--chunk C]
  dpcopula-cli fit-shard --input FILE --out FILE --shard-index I --shards N
                       --total-rows R [--epsilon E] [--seed S]
                       [--method kendall] [--margin NAME] [--k RATIO]
                       [--chunk C]
  dpcopula-cli merge   PART.dpcs [PART.dpcs ...] --out FILE [--workers W]
  dpcopula-cli inspect --model FILE
  dpcopula-cli sample  --model FILE --out FILE --rows N [--offset O]
                       [--workers W] [--profile reference|fast]
  dpcopula-cli synth   --input FILE --out FILE [--rows N] [--epsilon E]
                       [--seed S] [--method M] [--margin NAME] [--k RATIO]
                       [--workers W] [--chunk C] [--profile reference|fast]
  dpcopula-cli eval    --synthetic FILE --reference FILE [--queries N]
                       [--seed S] [--sanity B]
  dpcopula-cli serve   --model-dir DIR [--addr HOST:PORT] [--tenants FILE]
                       [--default-epsilon E] [--cache-cap N]
                       [--max-body-bytes N] [--max-fit-body N]
                       [--pool N] [--workers W]
                       [--max-rows N] [--max-connections N] [--max-inflight N]
                       [--read-timeout-ms N] [--write-timeout-ms N]
                       [--head-timeout-ms N] [--body-timeout-ms N]

Every subcommand also takes [--metrics json|prom|off] (default off) and
[--metrics-out FILE]. With metrics on, the full obskit taxonomy is
pre-registered and a snapshot is written next to the result file
(`RESULT.metrics.json` / `.prom`), to --metrics-out when given, or to
stdout when the command writes no file.

`fit` then `sample --offset 0 --rows N` reproduces `synth --rows N`
byte-for-byte for the same input/seed/options: sampling a saved artifact
is pure post-processing of the one budgeted release — with or without
metrics, which only observe and never perturb a release.

`fit --shards N` partitions the input rows into N disjoint shards,
builds each shard's noisy summaries in parallel, and merges them into
one artifact: margin cost composes in parallel (per-label max across
shards), Kendall concordance merges exactly before its single noise
draw, so the guarantee and the spent budget match the unsharded fit.
Repeating --input supplies explicit shards — the files must agree on
the schema and --shards defaults to the file count. Sharded fits need
--method kendall (mle/spearman have no mergeable summary).

`fit-shard` + `merge` is the distributed, out-of-core form of
`fit --shards N`: each worker streams its own CSV part (shard I of N,
rows never fully resident) into a `.dpcs` shard summary, and `merge`
combines the N summaries into a `.dpcm` byte-identical to the
single-process `fit --shards N` on the concatenated input at the same
seed and options. Every worker must be given the same --epsilon, --seed,
--method, --margin, --k, --chunk, --shards, and --total-rows (the row
count of the whole dataset, not the part); `merge` refuses mismatched or
duplicate parts by file name.

`--profile fast` samples with the vectorized hot path: same fitted DP
model, same privacy guarantee, much higher rows/s. Fast output is
deterministic with itself (same seed/options => same bytes at any worker
count) but on its own byte stream — it is not comparable to the
reference profile byte-for-byte, only distributionally.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "gen" => Flags::parse(rest).and_then(|f| cmd_gen(&f)),
        "fit" => Flags::parse(rest).and_then(|f| cmd_fit(&f)),
        "fit-shard" => Flags::parse(rest).and_then(|f| cmd_fit_shard(&f)),
        "merge" => cmd_merge(rest),
        "inspect" => Flags::parse(rest).and_then(|f| cmd_inspect(&f)),
        "sample" => Flags::parse(rest).and_then(|f| cmd_sample(&f)),
        "synth" => Flags::parse(rest).and_then(|f| cmd_synth(&f)),
        "eval" => Flags::parse(rest).and_then(|f| cmd_eval(&f)),
        "serve" => Flags::parse(rest).and_then(|f| cmd_serve(&f)),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// `--name value` flag pairs, hand-parsed (the workspace takes no
/// dependencies, so no clap).
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{flag}`"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeatable flag, in argument order.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value `{v}` for --{name}")),
        }
    }
}

/// Which rendering `--metrics` asked for.
enum MetricsMode {
    Off,
    Json,
    Prom,
}

/// The metrics side-channel of one CLI invocation: a private registry
/// with the full taxonomy pre-registered (so a snapshot always lists
/// every series, zeros included), plus where to write the snapshot.
struct Metrics {
    mode: MetricsMode,
    registry: Arc<MetricsRegistry>,
    out: Option<String>,
}

impl Metrics {
    fn parse(flags: &Flags) -> Result<Self, String> {
        let mode = match flags.get("metrics").unwrap_or("off") {
            "off" => MetricsMode::Off,
            "json" => MetricsMode::Json,
            "prom" => MetricsMode::Prom,
            other => {
                return Err(format!(
                    "unknown --metrics mode `{other}` (json, prom, off)"
                ))
            }
        };
        let registry = Arc::new(MetricsRegistry::new());
        if !matches!(mode, MetricsMode::Off) {
            obskit::names::register_taxonomy(&registry);
        }
        Ok(Self {
            mode,
            registry,
            out: flags.get("metrics-out").map(str::to_string),
        })
    }

    /// The sink instrumented code records through — disabled (one branch
    /// per would-be record) unless `--metrics` asked for a rendering.
    fn sink(&self) -> MetricsSink {
        match self.mode {
            MetricsMode::Off => MetricsSink::off(),
            _ => MetricsSink::to_registry(self.registry.clone()),
        }
    }

    /// Renders and writes the snapshot: to `--metrics-out` when given,
    /// else alongside the command's result file, else to stdout.
    fn write(&self, result_path: Option<&str>) -> Result<(), String> {
        let (rendered, ext) = match self.mode {
            MetricsMode::Off => return Ok(()),
            MetricsMode::Json => (self.registry.snapshot().to_json(), "metrics.json"),
            MetricsMode::Prom => (self.registry.snapshot().to_prometheus(), "metrics.prom"),
        };
        let path = self
            .out
            .clone()
            .or_else(|| result_path.map(|p| format!("{p}.{ext}")));
        match path {
            Some(p) => {
                std::fs::write(&p, rendered).map_err(|e| format!("writing {p}: {e}"))?;
                println!("metrics snapshot: {p}");
            }
            None => print!("{rendered}"),
        }
        Ok(())
    }
}

fn parse_method(s: &str) -> Result<CorrelationMethod, String> {
    match s {
        "kendall" => Ok(CorrelationMethod::Kendall(SamplingStrategy::Auto)),
        "mle" => Ok(CorrelationMethod::Mle(PartitionStrategy::Auto)),
        "spearman" => Ok(CorrelationMethod::Spearman),
        other => Err(format!(
            "unknown correlation method `{other}` (kendall, mle, spearman)"
        )),
    }
}

fn parse_profile(s: &str) -> Result<SamplingProfile, String> {
    match s {
        "reference" => Ok(SamplingProfile::Reference),
        "fast" => Ok(SamplingProfile::Fast),
        other => Err(format!(
            "unknown sampling profile `{other}` (reference, fast)"
        )),
    }
}

fn parse_margin(s: &str) -> Result<MarginMethod, String> {
    Ok(match s {
        "efpa" => MarginMethod::Efpa,
        "efpa-dct" => MarginMethod::EfpaDct,
        "identity" => MarginMethod::Identity,
        "privelet" => MarginMethod::Privelet,
        "php" => MarginMethod::Php,
        "hierarchical" => MarginMethod::Hierarchical,
        "noisefirst" => MarginMethod::NoiseFirst,
        "structurefirst" => MarginMethod::StructureFirst,
        other => return Err(format!("unknown margin method `{other}`")),
    })
}

/// The shared fit configuration of `fit` and `synth`.
fn parse_config(flags: &Flags) -> Result<(DpCopulaConfig, EngineOptions, u64), String> {
    let epsilon =
        Epsilon::new(flags.parsed("epsilon", 1.0)?).map_err(|e| format!("bad --epsilon: {e}"))?;
    let mut config = DpCopulaConfig::kendall(epsilon);
    config.method = parse_method(flags.get("method").unwrap_or("kendall"))?;
    config = config.with_margin(parse_margin(flags.get("margin").unwrap_or("efpa"))?);
    if let Some(k) = flags.get("k") {
        let k: f64 = k.parse().map_err(|_| format!("bad value `{k}` for --k"))?;
        if !k.is_finite() || k <= 0.0 {
            return Err("--k must be positive and finite".into());
        }
        config = config.with_k_ratio(k);
    }
    let mut opts = EngineOptions::with_workers(flags.parsed("workers", 1usize)?);
    opts.sample_chunk = flags.parsed("chunk", opts.sample_chunk)?;
    if opts.sample_chunk == 0 {
        return Err("--chunk must be positive".into());
    }
    let seed = flags.parsed("seed", 42u64)?;
    Ok((config, opts, seed))
}

fn load_dataset(path: &str) -> Result<datagen::Dataset, String> {
    datagen::io::load_csv(path).map_err(|e| format!("reading {path}: {e}"))
}

fn save_dataset(dataset: &datagen::Dataset, path: &str) -> Result<(), String> {
    datagen::io::save_csv(dataset, path).map_err(|e| format!("writing {path}: {e}"))
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let out = flags.require("out")?;
    let records = flags.parsed("records", 10_000usize)?;
    let seed = flags.parsed("seed", 42u64)?;
    let dataset = match flags.get("dataset").unwrap_or("us-census") {
        "us-census" => datagen::census::us_census(records, seed),
        "brazil-census" => datagen::census::brazil_census(records, seed),
        other => {
            return Err(format!(
                "unknown dataset `{other}` (us-census, brazil-census)"
            ))
        }
    };
    save_dataset(&dataset, out)?;
    println!(
        "wrote {} records x {} attributes to {out}",
        dataset.len(),
        dataset.dims()
    );
    Metrics::parse(flags)?.write(Some(out))?;
    Ok(())
}

/// Concatenates explicit shard inputs into one dataset, verifying every
/// file releases the same schema as the first (names and domains) —
/// summaries over disagreeing schemas cannot be merged into one model.
fn merge_shard_inputs(
    mut datasets: Vec<datagen::Dataset>,
    paths: &[&str],
) -> Result<datagen::Dataset, String> {
    let first = datasets.remove(0);
    if datasets.is_empty() {
        return Ok(first);
    }
    let attributes = first.attributes().to_vec();
    let mut columns: Vec<Vec<u32>> = first.into_columns();
    for (i, d) in datasets.into_iter().enumerate() {
        let shard = i + 1;
        if let Some(reason) = schema_mismatch(&attributes, d.attributes()) {
            let err = DpCopulaError::ShardSchemaMismatch { shard, reason };
            return Err(format!("{err} (shard {shard} is {})", paths[shard]));
        }
        for (col, extra) in columns.iter_mut().zip(d.into_columns()) {
            col.extend(extra);
        }
    }
    Ok(datagen::Dataset::new(attributes, columns))
}

/// How `other` disagrees with the first input's schema, if it does.
fn schema_mismatch(base: &[datagen::Attribute], other: &[datagen::Attribute]) -> Option<String> {
    if base.len() != other.len() {
        return Some(format!("{} attributes vs {}", other.len(), base.len()));
    }
    base.iter().zip(other).enumerate().find_map(|(j, (a, b))| {
        (a != b).then(|| {
            format!(
                "attribute {j} is `{}` (domain {}) vs `{}` (domain {})",
                b.name, b.domain, a.name, a.domain
            )
        })
    })
}

fn cmd_fit(flags: &Flags) -> Result<(), String> {
    let inputs = flags.get_all("input");
    if inputs.is_empty() {
        return Err("missing required flag --input".into());
    }
    let out = flags.require("out")?;
    let (config, mut opts, seed) = parse_config(flags)?;
    // Each extra --input is one explicit shard of rows; a single input
    // can still be split into N balanced row ranges with --shards.
    opts.shards = flags.parsed("shards", inputs.len())?;
    let metrics = Metrics::parse(flags)?;
    let mut datasets = Vec::with_capacity(inputs.len());
    for path in &inputs {
        datasets.push(load_dataset(path)?);
    }
    let dataset = merge_shard_inputs(datasets, &inputs)?;
    let domains = dataset.domains();
    let (mut model, report) = SynthesisRequest::from_config(dataset.columns(), &domains, config)
        .engine(opts)
        .seed(seed)
        .metrics(metrics.sink())
        .fit()
        .map_err(|e| format!("fit failed: {e}"))?;
    let names: Vec<&str> = dataset
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    model.set_attribute_names(&names);
    model.save(out).map_err(|e| format!("writing {out}: {e}"))?;
    let ledger = &model.artifact().ledger;
    println!(
        "fitted {} attributes from {} records in {:?} (seed {seed}, workers {}, shards {})",
        model.dims(),
        dataset.len(),
        report.timings.total(),
        report.workers,
        opts.shards,
    );
    println!(
        "spent epsilon {:.6} of {:.6}; artifact: {out}",
        ledger.spent(),
        ledger.total
    );
    metrics.write(Some(out))?;
    Ok(())
}

fn cmd_fit_shard(flags: &Flags) -> Result<(), String> {
    let input = flags.require("input")?;
    let out = flags.require("out")?;
    let shard_index: usize = flags
        .require("shard-index")?
        .parse()
        .map_err(|_| "bad value for --shard-index".to_string())?;
    let shards: usize = flags
        .require("shards")?
        .parse()
        .map_err(|_| "bad value for --shards".to_string())?;
    let total_rows: usize = flags
        .require("total-rows")?
        .parse()
        .map_err(|_| "bad value for --total-rows".to_string())?;
    let (config, opts, seed) = parse_config(flags)?;
    let metrics = Metrics::parse(flags)?;
    // The part streams through block by block — only one block of rows
    // is ever resident, which is the whole point of the shard worker.
    let mut source =
        datagen::CsvFileSource::open(input).map_err(|e| format!("reading {input}: {e}"))?;
    let artifact = dpcopula::fit_shard(
        &mut source,
        &config,
        shard_index,
        shards,
        total_rows,
        seed,
        &opts,
        &metrics.sink(),
    )
    .map_err(|e| format!("fit-shard failed: {e}"))?;
    artifact
        .save(out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    let spent_neps: u64 = artifact.ledger.iter().map(|s| s.neps).sum();
    println!(
        "fitted shard {shard_index} of {shards}: rows [{}, {}) of {total_rows}, \
         {} attributes (seed {seed})",
        artifact.row_start,
        artifact.row_end,
        artifact.schema.len(),
    );
    println!(
        "shard spent epsilon {:.6} (parallel-composed at merge); artifact: {out}",
        spent_neps as f64 * 1e-9
    );
    metrics.write(Some(out))?;
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    // `merge` takes its shard inputs positionally (`merge a.dpcs b.dpcs
    // --out m.dpcm`); every other argument is a regular --flag pair.
    let mut inputs: Vec<String> = Vec::new();
    let mut flag_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with("--") {
            flag_args.push(arg.clone());
            if let Some(value) = it.next() {
                flag_args.push(value.clone());
            }
        } else {
            inputs.push(arg.clone());
        }
    }
    let flags = Flags::parse(&flag_args)?;
    // `--input` also works, for symmetry with `fit`.
    inputs.extend(flags.get_all("input").iter().map(|s| s.to_string()));
    if inputs.is_empty() {
        return Err("merge needs at least one .dpcs shard artifact".into());
    }
    let out = flags.require("out")?;
    let workers = flags.parsed("workers", 1usize)?;
    let metrics = Metrics::parse(&flags)?;
    let mut artifacts = Vec::with_capacity(inputs.len());
    for path in &inputs {
        let artifact =
            modelstore::ShardArtifact::load(path).map_err(|e| format!("reading {path}: {e}"))?;
        artifacts.push((path.clone(), artifact));
    }
    let total_rows = artifacts[0].1.total_rows;
    let model = dpcopula::merge_shards(&artifacts, workers, &metrics.sink())
        .map_err(|e| format!("merge failed: {e}"))?;
    model.save(out).map_err(|e| format!("writing {out}: {e}"))?;
    let ledger = &model.artifact().ledger;
    println!(
        "merged {} shard artifacts covering {total_rows} records into {} attributes",
        artifacts.len(),
        model.dims(),
    );
    println!(
        "spent epsilon {:.6} of {:.6}; artifact: {out}",
        ledger.spent(),
        ledger.total
    );
    metrics.write(Some(out))?;
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let path = flags.require("model")?;
    let metrics = Metrics::parse(flags)?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let sections = modelstore::probe(&bytes).map_err(|e| e.to_string())?;
    let version = modelstore::probe_version(&bytes).map_err(|e| e.to_string())?;
    let artifact =
        modelstore::decode_observed(&bytes, &metrics.sink()).map_err(|e| e.to_string())?;
    println!(
        "{path}: {} bytes, format v{version}, {} sections",
        bytes.len(),
        sections.len()
    );
    for s in &sections {
        println!(
            "  {:<12} offset {:>6}  len {:>7}  crc32 {:08x}",
            s.name, s.payload_offset, s.payload_len, s.crc
        );
    }
    println!("schema: {} attributes", artifact.dims());
    for attr in &artifact.schema {
        let binned = if attr.bin_edges.is_empty() {
            String::new()
        } else {
            format!("  ({} bin edges)", attr.bin_edges.len())
        };
        println!("  {:<20} domain {:>6}{binned}", attr.name, attr.domain);
    }
    println!(
        "margin method: {}\ncopula family: {}",
        artifact.margin_method,
        artifact.family.name()
    );
    let ledger = &artifact.ledger;
    println!(
        "budget: total epsilon {:.6}, spent {:.6}",
        ledger.total,
        ledger.spent()
    );
    for entry in &ledger.entries {
        println!("  {:<12} epsilon {:.6}", entry.label, entry.epsilon);
    }
    for (s, entries) in ledger.shard_entries.iter().enumerate() {
        let spent: f64 = entries.iter().map(|e| e.epsilon).sum();
        println!(
            "  shard {s:<6} epsilon {spent:.6} ({} entries, parallel-composed)",
            entries.len()
        );
    }
    let p = &artifact.provenance;
    println!(
        "provenance: seed {}, chunk {}, stream {}, scheme {}",
        p.base_seed, p.sample_chunk, p.sampler_stream, p.scheme
    );
    for (s, info) in p.shards.iter().enumerate() {
        println!(
            "  shard {s:<6} rows [{}, {})  seed index {}",
            info.row_start, info.row_end, info.seed_index
        );
    }
    println!("correlation:");
    let m = artifact.correlation.rows();
    for i in 0..m {
        let row: Vec<String> = (0..m)
            .map(|j| format!("{:>7.4}", artifact.correlation[(i, j)]))
            .collect();
        println!("  {}", row.join(" "));
    }
    metrics.write(None)?;
    Ok(())
}

fn cmd_sample(flags: &Flags) -> Result<(), String> {
    let path = flags.require("model")?;
    let out = flags.require("out")?;
    let rows: usize = flags
        .require("rows")?
        .parse()
        .map_err(|_| "bad value for --rows".to_string())?;
    let offset = flags.parsed("offset", 0usize)?;
    let workers = flags.parsed("workers", 1usize)?;
    let profile = parse_profile(flags.get("profile").unwrap_or("reference"))?;
    let metrics = Metrics::parse(flags)?;
    let model = FittedModel::load_observed(path, &metrics.sink())
        .map_err(|e| format!("reading {path}: {e}"))?;
    let columns = model
        .try_sample_range_profiled(profile, offset, rows, workers)
        .map_err(|e| e.to_string())?;
    let attributes: Vec<datagen::Attribute> = model
        .artifact()
        .schema
        .iter()
        .map(|a| datagen::Attribute::new(a.name.clone(), a.domain))
        .collect();
    save_dataset(&datagen::Dataset::new(attributes, columns), out)?;
    println!(
        "served rows [{offset}, {}) from {path} to {out}",
        offset + rows
    );
    metrics.write(Some(out))?;
    Ok(())
}

fn cmd_synth(flags: &Flags) -> Result<(), String> {
    let input = flags.require("input")?;
    let out = flags.require("out")?;
    let (mut config, opts, seed) = parse_config(flags)?;
    config = config.with_profile(parse_profile(flags.get("profile").unwrap_or("reference"))?);
    let metrics = Metrics::parse(flags)?;
    let dataset = load_dataset(input)?;
    if let Some(rows) = flags.get("rows") {
        let rows: usize = rows
            .parse()
            .map_err(|_| "bad value for --rows".to_string())?;
        config = config.with_output_records(rows);
    }
    let domains = dataset.domains();
    let (synthesis, report) = SynthesisRequest::from_config(dataset.columns(), &domains, config)
        .engine(opts)
        .seed(seed)
        .metrics(metrics.sink())
        .run()
        .map_err(|e| format!("synthesis failed: {e}"))?;
    let attributes = dataset.attributes().to_vec();
    let released = datagen::Dataset::new(attributes, synthesis.columns);
    save_dataset(&released, out)?;
    println!(
        "synthesized {} records x {} attributes to {out} in {:?} (seed {seed})",
        released.len(),
        released.dims(),
        report.timings.total(),
    );
    metrics.write(Some(out))?;
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<(), String> {
    let synthetic = load_dataset(flags.require("synthetic")?)?;
    let reference = load_dataset(flags.require("reference")?)?;
    if synthetic.domains() != reference.domains() {
        return Err(format!(
            "schema mismatch: synthetic domains {:?} vs reference {:?}",
            synthetic.domains(),
            reference.domains()
        ));
    }
    let queries = flags.parsed("queries", 1_000usize)?;
    let seed = flags.parsed("seed", 42u64)?;
    let sanity = flags.parsed("sanity", 1.0f64)?;
    if sanity <= 0.0 {
        return Err("--sanity must be positive".into());
    }
    let metrics = Metrics::parse(flags)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = queryeval::Workload::random(&reference.domains(), queries, &mut rng);
    let report = queryeval::evaluate(
        &workload,
        &queryeval::Synthetic::new(synthetic.columns(), reference.columns()).sanity(sanity),
    );
    let summary = report.summary;
    println!(
        "queries {}  mean relative error {:.6}  mean absolute error {:.3}  max relative error {:.6}",
        summary.queries,
        summary.mean_relative,
        summary.mean_absolute,
        report.max_relative()
    );
    metrics.write(None)?;
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use dpcopula_serve::{ServeConfig, Server};
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: flags.get("addr").unwrap_or(&defaults.addr).to_string(),
        model_dir: flags.require("model-dir")?.into(),
        tenant_file: flags.get("tenants").map(Into::into),
        default_epsilon: flags.parsed("default-epsilon", defaults.default_epsilon)?,
        cache_capacity: flags.parsed("cache-cap", defaults.cache_capacity)?,
        max_body_bytes: flags.parsed("max-body-bytes", defaults.max_body_bytes)?,
        max_fit_body_bytes: flags.parsed("max-fit-body", defaults.max_fit_body_bytes)?,
        pool_workers: flags.parsed("pool", defaults.pool_workers)?,
        sample_workers: flags.parsed("workers", defaults.sample_workers)?,
        max_rows: flags.parsed("max-rows", defaults.max_rows)?,
        max_connections: flags.parsed("max-connections", defaults.max_connections)?,
        max_inflight: flags.parsed("max-inflight", defaults.max_inflight)?,
        read_timeout: ms_flag(flags, "read-timeout-ms", defaults.read_timeout)?,
        write_timeout: ms_flag(flags, "write-timeout-ms", defaults.write_timeout)?,
        head_timeout: ms_flag(flags, "head-timeout-ms", defaults.head_timeout)?,
        body_timeout: ms_flag(flags, "body-timeout-ms", defaults.body_timeout)?,
        drain_deadline: defaults.drain_deadline,
    };
    let server = Server::bind(config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on http://{addr}");
    server.run().map_err(|e| e.to_string())
}

fn ms_flag(
    flags: &Flags,
    name: &str,
    default: std::time::Duration,
) -> Result<std::time::Duration, String> {
    let ms: u64 = flags.parsed(name, default.as_millis() as u64)?;
    if ms == 0 {
        return Err(format!("--{name} must be at least 1 millisecond"));
    }
    Ok(std::time::Duration::from_millis(ms))
}
