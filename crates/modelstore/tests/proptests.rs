//! Property tests for the `.dpcm` codec: randomized artifacts round-trip
//! losslessly, and **any** single flipped byte of the encoding is
//! rejected at decode with a precise (section, offset) error.

use mathkit::Matrix;
use modelstore::format::StoreError;
use modelstore::{
    probe, probe_shard_artifact, probe_version, AttributeSpec, BudgetEntry, BudgetLedger,
    CopulaFamily, ModelArtifact, RngProvenance, SamplingSpec, ShardArtifact, ShardConcordance,
    ShardFitConfig, ShardInfo, ShardSpend,
};
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};
use testkit::{prop_assert, prop_assert_eq, property_tests};

/// Builds a randomized artifact: 1–5 attributes, domains 1–8, random
/// names/edges/family/ledger, and (half the time) per-shard provenance
/// and sub-ledgers so both the v1 and v2 encodings are exercised.
fn random_artifact(seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = rng.gen_range(1..6usize);
    let schema: Vec<AttributeSpec> = (0..m)
        .map(|j| {
            let domain = rng.gen_range(1..9usize);
            let bin_edges = if rng.gen_range(0..2u32) == 0 {
                Vec::new()
            } else {
                (0..=domain)
                    .map(|e| e as f64 * rng.gen_range(0.5..2.0))
                    .collect()
            };
            AttributeSpec {
                name: format!("attr_{j}_{}", rng.gen_range(0..1000u32)),
                domain,
                bin_edges,
            }
        })
        .collect();
    let margins: Vec<Vec<f64>> = schema
        .iter()
        .map(|a| (0..a.domain).map(|_| rng.gen_range(-3.0..50.0)).collect())
        .collect();
    let mut correlation = Matrix::identity(m);
    for i in 0..m {
        for j in 0..i {
            let r = rng.gen_range(-0.9..0.9);
            correlation[(i, j)] = r;
            correlation[(j, i)] = r;
        }
    }
    let family = match rng.gen_range(0..3u32) {
        0 => CopulaFamily::Gaussian,
        1 => CopulaFamily::StudentT {
            dof: rng.gen_range(1.0..30.0),
        },
        _ => CopulaFamily::Hybrid {
            threshold: rng.gen_range(2..16u32),
        },
    };
    let shard_count = if rng.gen_range(0..2u32) == 0 {
        0
    } else {
        rng.gen_range(2..5usize)
    };
    let mut shards = Vec::with_capacity(shard_count);
    let mut shard_entries = Vec::with_capacity(shard_count);
    let mut row = 0u64;
    for s in 0..shard_count {
        let rows = rng.gen_range(1..500u64);
        shards.push(ShardInfo {
            row_start: row,
            row_end: row + rows,
            seed_index: s as u64,
        });
        row += rows;
        shard_entries.push(vec![
            BudgetEntry {
                label: "margins".into(),
                epsilon: rng.gen_range(0.01..2.0),
            },
            BudgetEntry {
                label: "correlation".into(),
                epsilon: rng.gen_range(0.01..2.0),
            },
        ]);
    }
    ModelArtifact {
        schema,
        margin_method: ["efpa", "identity", "privelet"][rng.gen_range(0..3usize)].into(),
        margins,
        correlation,
        family,
        ledger: BudgetLedger {
            total: rng.gen_range(0.1..4.0),
            entries: vec![
                BudgetEntry {
                    label: "margins".into(),
                    epsilon: rng.gen_range(0.01..2.0),
                },
                BudgetEntry {
                    label: "correlation".into(),
                    epsilon: rng.gen_range(0.01..2.0),
                },
            ],
            shard_entries,
        },
        provenance: RngProvenance {
            base_seed: rng.gen_range(0..u64::MAX),
            sample_chunk: rng.gen_range(1..65536u64),
            sampler_stream: 6,
            scheme: "splitmix64x3/xoshiro256++".into(),
            shards,
        },
    }
}

property_tests! {
    fn round_trip_is_lossless(seed in 0u64..100_000) {
        let artifact = random_artifact(seed);
        let bytes = artifact.encode();
        let back = ModelArtifact::decode(&bytes).expect("clean bytes decode");
        prop_assert_eq!(back, artifact);
        // Encoding is deterministic: decode→encode reproduces the bytes.
        prop_assert_eq!(ModelArtifact::decode(&bytes).unwrap().encode(), bytes);
    }

    fn any_single_byte_flip_is_rejected(
        seed in 0u64..100_000,
        pos_pick in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let artifact = random_artifact(seed);
        let mut bytes = artifact.encode();
        let pos = (pos_pick % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let err = match ModelArtifact::decode(&bytes) {
            Ok(_) => panic!("flip at byte {pos} went undetected"),
            Err(e) => e,
        };
        // The error is a structural diagnosis, never a bare I/O error,
        // and its rendering always locates the damage.
        let msg = err.to_string();
        prop_assert!(!matches!(err, StoreError::Io(_)), "got io error: {msg}");
        prop_assert!(!msg.is_empty());
    }

    fn truncation_at_any_point_is_rejected(seed in 0u64..100_000, cut_pick in 0u64..1_000_000) {
        let artifact = random_artifact(seed);
        let bytes = artifact.encode();
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(ModelArtifact::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}

/// Builds a randomized `.dpcs` shard artifact with a consistent
/// topology, schema-matched margins, and a valid τ layer — the same
/// role [`random_artifact`] plays for `.dpcm`.
fn random_shard_artifact(seed: u64) -> ShardArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = rng.gen_range(1..6usize);
    let schema: Vec<AttributeSpec> = (0..m)
        .map(|j| {
            let name = format!("attr_{j}_{}", rng.gen_range(0..1000u32));
            let domain = rng.gen_range(1..9usize);
            AttributeSpec::new(name, domain)
        })
        .collect();
    let noisy_margins: Vec<Vec<f64>> = schema
        .iter()
        .map(|a| (0..a.domain).map(|_| rng.gen_range(-3.0..50.0)).collect())
        .collect();

    let shard_count = rng.gen_range(1..5u64);
    let shard_index = rng.gen_range(0..shard_count);
    let rows = rng.gen_range(2..300u64);
    let row_start = rng.gen_range(0..1000u64);
    let row_end = row_start + rows;
    let total_rows = row_end + rng.gen_range(shard_count..1000u64);

    let sampled_len = rng.gen_range(1..=rows.min(40)) as usize;
    let (sampled, within) = if m > 1 {
        let cols = (0..m)
            .map(|j| {
                (0..sampled_len)
                    .map(|_| rng.gen_range(0..schema[j].domain as u32))
                    .collect()
            })
            .collect();
        let pairs = sampled_len as u64 * (sampled_len as u64 - 1) / 2;
        let concordances = (0..m * (m - 1) / 2)
            .map(|_| ShardConcordance {
                s: rng.gen_range(-(pairs as i64)..=pairs as i64),
                pairs,
            })
            .collect();
        (cols, concordances)
    } else {
        (Vec::new(), Vec::new())
    };

    let strategy = match rng.gen_range(0..3u32) {
        0 => SamplingSpec::Full,
        1 => SamplingSpec::Auto,
        _ => SamplingSpec::Fixed(rng.gen_range(1..5000u64)),
    };
    ShardArtifact {
        schema,
        shard_index,
        shard_count,
        total_rows,
        row_start,
        row_end,
        seed_index: shard_index,
        config: ShardFitConfig {
            epsilon: rng.gen_range(0.1..4.0),
            k_ratio: rng.gen_range(0.1..16.0),
            margin_method: ["efpa", "identity", "privelet"][rng.gen_range(0..3usize)].into(),
            strategy,
            base_seed: rng.gen_range(0..u64::MAX),
            sample_chunk: rng.gen_range(1..65536u64),
            scheme: "splitmix64x3/xoshiro256++".into(),
        },
        noisy_margins,
        sampled,
        within,
        ledger: ["margins", "correlation"]
            .into_iter()
            .map(|label| ShardSpend {
                label: label.into(),
                neps: rng.gen_range(1..4_000_000_000u64),
            })
            .collect(),
    }
}

property_tests! {
    fn shard_round_trip_is_lossless(seed in 0u64..100_000) {
        let artifact = random_shard_artifact(seed);
        let bytes = artifact.encode();
        let back = ShardArtifact::decode(&bytes).expect("clean bytes decode");
        prop_assert_eq!(back, artifact);
        prop_assert_eq!(ShardArtifact::decode(&bytes).unwrap().encode(), bytes);
    }

    fn shard_any_single_byte_flip_is_rejected(
        seed in 0u64..100_000,
        pos_pick in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let artifact = random_shard_artifact(seed);
        let mut bytes = artifact.encode();
        let pos = (pos_pick % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let err = match ShardArtifact::decode(&bytes) {
            Ok(_) => panic!("flip at byte {pos} went undetected"),
            Err(e) => e,
        };
        let msg = err.to_string();
        prop_assert!(!matches!(err, StoreError::Io(_)), "got io error: {msg}");
        prop_assert!(!msg.is_empty());
    }

    fn shard_truncation_at_any_point_is_rejected(
        seed in 0u64..100_000,
        cut_pick in 0u64..1_000_000,
    ) {
        let artifact = random_shard_artifact(seed);
        let bytes = artifact.encode();
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(ShardArtifact::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}

/// `.dpcs` damage is diagnosed with the same precision as `.dpcm`: a
/// flipped payload byte names its section at the payload's offset, and
/// header damage maps to the dedicated header errors.
#[test]
fn shard_corruption_errors_name_section_and_offset() {
    let artifact = random_shard_artifact(7);
    let clean = artifact.encode();
    let sections = probe_shard_artifact(&clean).unwrap();
    assert_eq!(
        sections.iter().map(|s| s.name).collect::<Vec<_>>(),
        vec!["schema", "shard", "config", "margins", "tau", "budget"]
    );

    for info in &sections {
        if info.payload_len == 0 {
            continue;
        }
        let flip_at = info.payload_offset + info.payload_len / 2;
        let mut bytes = clean.clone();
        bytes[flip_at] ^= 0x40;
        match ShardArtifact::decode(&bytes).unwrap_err() {
            StoreError::SectionChecksum {
                section, offset, ..
            } => {
                assert_eq!(section, info.name, "flip at {flip_at}");
                assert_eq!(offset, info.payload_offset);
            }
            other => panic!("section {}: unexpected error {other}", info.name),
        }
    }

    let mut bad_magic = clean.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        ShardArtifact::decode(&bad_magic).unwrap_err(),
        StoreError::BadMagic { .. }
    ));

    let mut bad_version = clean.clone();
    bad_version[4] ^= 0x01;
    assert!(matches!(
        ShardArtifact::decode(&bad_version).unwrap_err(),
        StoreError::UnsupportedVersion { .. }
    ));

    let mut bad_header_crc = clean.clone();
    bad_header_crc[9] ^= 0x10;
    assert!(matches!(
        ShardArtifact::decode(&bad_header_crc).unwrap_err(),
        StoreError::HeaderChecksum { .. }
    ));

    let mut padded = clean.clone();
    padded.push(0);
    match ShardArtifact::decode(&padded).unwrap_err() {
        StoreError::TrailingBytes { offset } => assert_eq!(offset, clean.len()),
        other => panic!("unexpected error {other}"),
    }

    // A `.dpcm` is not a `.dpcs`: cross-feeding the decoders fails on
    // the magic, not deep inside a section parse.
    let model_bytes = random_artifact(7).encode();
    assert!(matches!(
        ShardArtifact::decode(&model_bytes).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
    assert!(matches!(
        ModelArtifact::decode(&clean).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
}

/// `.dpcs` save/load round-trips through a real temp file.
#[test]
fn shard_save_load_round_trips_on_disk() {
    let artifact = random_shard_artifact(11);
    let dir = std::env::temp_dir().join(format!("modelstore_shard_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("part.dpcs");
    artifact.save(&path).unwrap();
    let back = ShardArtifact::load(&path).unwrap();
    assert_eq!(back, artifact);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Pins the *kind* and precision of the error for damage in each region
/// of the file: the reported section and offset must bracket the flip.
#[test]
fn corruption_errors_name_section_and_offset() {
    let artifact = random_artifact(7);
    let clean = artifact.encode();
    let sections = probe(&clean).unwrap();

    // Flip one payload byte of every section: the error must name that
    // section and report the payload's own offset.
    for info in &sections {
        if info.payload_len == 0 {
            continue;
        }
        let flip_at = info.payload_offset + info.payload_len / 2;
        let mut bytes = clean.clone();
        bytes[flip_at] ^= 0x40;
        match ModelArtifact::decode(&bytes).unwrap_err() {
            StoreError::SectionChecksum {
                section, offset, ..
            } => {
                assert_eq!(section, info.name, "flip at {flip_at}");
                assert_eq!(offset, info.payload_offset);
            }
            other => panic!("section {}: unexpected error {other}", info.name),
        }
    }

    // Header regions map to their dedicated errors.
    let mut bad_magic = clean.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        ModelArtifact::decode(&bad_magic).unwrap_err(),
        StoreError::BadMagic { .. }
    ));

    let mut bad_version = clean.clone();
    bad_version[4] ^= 0x01;
    assert!(matches!(
        ModelArtifact::decode(&bad_version).unwrap_err(),
        StoreError::UnsupportedVersion { .. }
    ));

    let mut bad_count = clean.clone();
    bad_count[6] ^= 0x01; // section count — caught by the header CRC
    assert!(matches!(
        ModelArtifact::decode(&bad_count).unwrap_err(),
        StoreError::HeaderChecksum { .. }
    ));

    let mut bad_header_crc = clean.clone();
    bad_header_crc[9] ^= 0x10;
    assert!(matches!(
        ModelArtifact::decode(&bad_header_crc).unwrap_err(),
        StoreError::HeaderChecksum { .. }
    ));

    // A flipped section tag reports which section was expected there.
    let tag_at = sections[1].payload_offset - 12;
    let mut bad_tag = clean.clone();
    bad_tag[tag_at] ^= 0x20;
    match ModelArtifact::decode(&bad_tag).unwrap_err() {
        StoreError::UnexpectedSection {
            expected, offset, ..
        } => {
            assert_eq!(expected, "margins");
            assert_eq!(offset, tag_at);
        }
        other => panic!("unexpected error {other}"),
    }

    // Appending bytes is rejected too.
    let mut padded = clean.clone();
    padded.push(0);
    match ModelArtifact::decode(&padded).unwrap_err() {
        StoreError::TrailingBytes { offset } => assert_eq!(offset, clean.len()),
        other => panic!("unexpected error {other}"),
    }
}

/// File-level save/load round-trip through a real temp file.
#[test]
fn save_load_round_trips_on_disk() {
    let artifact = random_artifact(11);
    let dir = std::env::temp_dir().join(format!("modelstore_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.dpcm");
    artifact.save(&path).unwrap();
    let back = ModelArtifact::load(&path).unwrap();
    assert_eq!(back, artifact);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `probe` validates framing without decoding and lists the six sections
/// in order (same section set in both format versions).
#[test]
fn probe_lists_sections_in_order() {
    let bytes = random_artifact(3).encode();
    let names: Vec<&str> = probe(&bytes).unwrap().iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        vec![
            "schema",
            "margins",
            "correlation",
            "copula",
            "budget",
            "provenance"
        ]
    );
}

/// The encoder emits the oldest version able to represent the artifact:
/// no shard data → v1 bytes, any shard data → v2. This is what keeps
/// single-shard fits byte-identical to the pre-shard format.
#[test]
fn encoder_picks_minimal_version_for_shard_data() {
    let mut artifact = random_artifact(5);
    artifact.provenance.shards.clear();
    artifact.ledger.shard_entries.clear();
    let v1_bytes = artifact.encode();
    assert_eq!(probe_version(&v1_bytes).unwrap(), 1);
    assert_eq!(ModelArtifact::decode(&v1_bytes).unwrap(), artifact);

    artifact.provenance.shards = vec![
        ShardInfo {
            row_start: 0,
            row_end: 10,
            seed_index: 0,
        },
        ShardInfo {
            row_start: 10,
            row_end: 25,
            seed_index: 1,
        },
    ];
    artifact.ledger.shard_entries = vec![
        vec![BudgetEntry {
            label: "margins".into(),
            epsilon: 0.5,
        }],
        vec![BudgetEntry {
            label: "margins".into(),
            epsilon: 0.5,
        }],
    ];
    let v2_bytes = artifact.encode();
    assert_eq!(probe_version(&v2_bytes).unwrap(), 2);
    assert_eq!(ModelArtifact::decode(&v2_bytes).unwrap(), artifact);
    assert_ne!(v1_bytes, v2_bytes);
}

/// A v2 shard record claiming an empty row range is structurally
/// malformed and rejected with the provenance section named.
#[test]
fn empty_shard_row_range_is_rejected() {
    let mut artifact = random_artifact(9);
    artifact.provenance.shards = vec![
        ShardInfo {
            row_start: 0,
            row_end: 8,
            seed_index: 0,
        },
        ShardInfo {
            row_start: 8,
            row_end: 8,
            seed_index: 1,
        },
    ];
    artifact.ledger.shard_entries = vec![Vec::new(), Vec::new()];
    let bytes = artifact.encode();
    match ModelArtifact::decode(&bytes).unwrap_err() {
        StoreError::Malformed {
            section, reason, ..
        } => {
            assert_eq!(section, "provenance");
            assert!(reason.contains("shard 1"), "reason: {reason}");
        }
        other => panic!("unexpected error {other}"),
    }
}

/// A pre-refactor `.dpcm` written by the v1 encoder still loads: the
/// checked-in fixture decodes to exactly the artifact that produced it,
/// and re-encoding reproduces the fixture bytes (so old artifacts
/// survive a rewrite cycle untouched).
#[test]
fn v1_fixture_still_loads_and_round_trips() {
    let bytes = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/v1_model.dpcm"
    ))
    .expect("fixture present");
    assert_eq!(probe_version(&bytes).unwrap(), 1);

    let expected = ModelArtifact {
        schema: vec![
            AttributeSpec::new("age", 4),
            AttributeSpec {
                name: "income".into(),
                domain: 3,
                bin_edges: vec![0.0, 10.0, 20.0, 30.0],
            },
        ],
        margin_method: "efpa".into(),
        margins: vec![vec![3.5, 1.25, 0.0, 2.75], vec![5.0, -0.5, 1.5]],
        correlation: Matrix::from_vec(2, 2, vec![1.0, 0.25, 0.25, 1.0]),
        family: CopulaFamily::StudentT { dof: 7.5 },
        ledger: BudgetLedger {
            total: 1.0,
            entries: vec![
                BudgetEntry {
                    label: "margins".into(),
                    epsilon: 8.0 / 9.0,
                },
                BudgetEntry {
                    label: "correlation".into(),
                    epsilon: 1.0 / 9.0,
                },
            ],
            shard_entries: Vec::new(),
        },
        provenance: RngProvenance {
            base_seed: 424242,
            sample_chunk: 8192,
            sampler_stream: 6,
            scheme: "splitmix64x3/xoshiro256++".into(),
            shards: Vec::new(),
        },
    };

    let decoded = ModelArtifact::decode(&bytes).expect("v1 fixture decodes");
    assert_eq!(decoded, expected);
    assert_eq!(decoded.encode(), bytes, "v1 bytes are reproduced exactly");
}
