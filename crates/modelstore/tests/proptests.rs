//! Property tests for the `.dpcm` codec: randomized artifacts round-trip
//! losslessly, and **any** single flipped byte of the encoding is
//! rejected at decode with a precise (section, offset) error.

use mathkit::Matrix;
use modelstore::format::StoreError;
use modelstore::{
    probe, AttributeSpec, BudgetEntry, BudgetLedger, CopulaFamily, ModelArtifact, RngProvenance,
};
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};
use testkit::{prop_assert, prop_assert_eq, property_tests};

/// Builds a randomized artifact: 1–5 attributes, domains 1–8, random
/// names/edges/family/ledger — every format feature exercised.
fn random_artifact(seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = rng.gen_range(1..6usize);
    let schema: Vec<AttributeSpec> = (0..m)
        .map(|j| {
            let domain = rng.gen_range(1..9usize);
            let bin_edges = if rng.gen_range(0..2u32) == 0 {
                Vec::new()
            } else {
                (0..=domain)
                    .map(|e| e as f64 * rng.gen_range(0.5..2.0))
                    .collect()
            };
            AttributeSpec {
                name: format!("attr_{j}_{}", rng.gen_range(0..1000u32)),
                domain,
                bin_edges,
            }
        })
        .collect();
    let margins: Vec<Vec<f64>> = schema
        .iter()
        .map(|a| (0..a.domain).map(|_| rng.gen_range(-3.0..50.0)).collect())
        .collect();
    let mut correlation = Matrix::identity(m);
    for i in 0..m {
        for j in 0..i {
            let r = rng.gen_range(-0.9..0.9);
            correlation[(i, j)] = r;
            correlation[(j, i)] = r;
        }
    }
    let family = match rng.gen_range(0..3u32) {
        0 => CopulaFamily::Gaussian,
        1 => CopulaFamily::StudentT {
            dof: rng.gen_range(1.0..30.0),
        },
        _ => CopulaFamily::Hybrid {
            threshold: rng.gen_range(2..16u32),
        },
    };
    ModelArtifact {
        schema,
        margin_method: ["efpa", "identity", "privelet"][rng.gen_range(0..3usize)].into(),
        margins,
        correlation,
        family,
        ledger: BudgetLedger {
            total: rng.gen_range(0.1..4.0),
            entries: vec![
                BudgetEntry {
                    label: "margins".into(),
                    epsilon: rng.gen_range(0.01..2.0),
                },
                BudgetEntry {
                    label: "correlation".into(),
                    epsilon: rng.gen_range(0.01..2.0),
                },
            ],
        },
        provenance: RngProvenance {
            base_seed: rng.gen_range(0..u64::MAX),
            sample_chunk: rng.gen_range(1..65536u64),
            sampler_stream: 6,
            scheme: "splitmix64x3/xoshiro256++".into(),
        },
    }
}

property_tests! {
    fn round_trip_is_lossless(seed in 0u64..100_000) {
        let artifact = random_artifact(seed);
        let bytes = artifact.encode();
        let back = ModelArtifact::decode(&bytes).expect("clean bytes decode");
        prop_assert_eq!(back, artifact);
        // Encoding is deterministic: decode→encode reproduces the bytes.
        prop_assert_eq!(ModelArtifact::decode(&bytes).unwrap().encode(), bytes);
    }

    fn any_single_byte_flip_is_rejected(
        seed in 0u64..100_000,
        pos_pick in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let artifact = random_artifact(seed);
        let mut bytes = artifact.encode();
        let pos = (pos_pick % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let err = match ModelArtifact::decode(&bytes) {
            Ok(_) => panic!("flip at byte {pos} went undetected"),
            Err(e) => e,
        };
        // The error is a structural diagnosis, never a bare I/O error,
        // and its rendering always locates the damage.
        let msg = err.to_string();
        prop_assert!(!matches!(err, StoreError::Io(_)), "got io error: {msg}");
        prop_assert!(!msg.is_empty());
    }

    fn truncation_at_any_point_is_rejected(seed in 0u64..100_000, cut_pick in 0u64..1_000_000) {
        let artifact = random_artifact(seed);
        let bytes = artifact.encode();
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(ModelArtifact::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}

/// Pins the *kind* and precision of the error for damage in each region
/// of the file: the reported section and offset must bracket the flip.
#[test]
fn corruption_errors_name_section_and_offset() {
    let artifact = random_artifact(7);
    let clean = artifact.encode();
    let sections = probe(&clean).unwrap();

    // Flip one payload byte of every section: the error must name that
    // section and report the payload's own offset.
    for info in &sections {
        if info.payload_len == 0 {
            continue;
        }
        let flip_at = info.payload_offset + info.payload_len / 2;
        let mut bytes = clean.clone();
        bytes[flip_at] ^= 0x40;
        match ModelArtifact::decode(&bytes).unwrap_err() {
            StoreError::SectionChecksum {
                section, offset, ..
            } => {
                assert_eq!(section, info.name, "flip at {flip_at}");
                assert_eq!(offset, info.payload_offset);
            }
            other => panic!("section {}: unexpected error {other}", info.name),
        }
    }

    // Header regions map to their dedicated errors.
    let mut bad_magic = clean.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        ModelArtifact::decode(&bad_magic).unwrap_err(),
        StoreError::BadMagic { .. }
    ));

    let mut bad_version = clean.clone();
    bad_version[4] ^= 0x01;
    assert!(matches!(
        ModelArtifact::decode(&bad_version).unwrap_err(),
        StoreError::UnsupportedVersion { .. }
    ));

    let mut bad_count = clean.clone();
    bad_count[6] ^= 0x01; // section count — caught by the header CRC
    assert!(matches!(
        ModelArtifact::decode(&bad_count).unwrap_err(),
        StoreError::HeaderChecksum { .. }
    ));

    let mut bad_header_crc = clean.clone();
    bad_header_crc[9] ^= 0x10;
    assert!(matches!(
        ModelArtifact::decode(&bad_header_crc).unwrap_err(),
        StoreError::HeaderChecksum { .. }
    ));

    // A flipped section tag reports which section was expected there.
    let tag_at = sections[1].payload_offset - 12;
    let mut bad_tag = clean.clone();
    bad_tag[tag_at] ^= 0x20;
    match ModelArtifact::decode(&bad_tag).unwrap_err() {
        StoreError::UnexpectedSection {
            expected, offset, ..
        } => {
            assert_eq!(expected, "margins");
            assert_eq!(offset, tag_at);
        }
        other => panic!("unexpected error {other}"),
    }

    // Appending bytes is rejected too.
    let mut padded = clean.clone();
    padded.push(0);
    match ModelArtifact::decode(&padded).unwrap_err() {
        StoreError::TrailingBytes { offset } => assert_eq!(offset, clean.len()),
        other => panic!("unexpected error {other}"),
    }
}

/// File-level save/load round-trip through a real temp file.
#[test]
fn save_load_round_trips_on_disk() {
    let artifact = random_artifact(11);
    let dir = std::env::temp_dir().join(format!("modelstore_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.dpcm");
    artifact.save(&path).unwrap();
    let back = ModelArtifact::load(&path).unwrap();
    assert_eq!(back, artifact);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `probe` validates framing without decoding and lists the v1 sections
/// in order.
#[test]
fn probe_lists_sections_in_order() {
    let bytes = random_artifact(3).encode();
    let names: Vec<&str> = probe(&bytes).unwrap().iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        vec![
            "schema",
            "margins",
            "correlation",
            "copula",
            "budget",
            "provenance"
        ]
    );
}
