//! The `.dpcs` shard-summary wire format: a versioned, checksummed
//! container for **one shard's** contribution to a distributed fit —
//! what `dpcopula::shard::ShardSummary` carries in process, made durable
//! so independent workers can fit shards on different hosts and a
//! coordinator can merge the artifacts into one `.dpcm` model.
//!
//! ## Layout (all integers little-endian)
//!
//! The framing is byte-for-byte the `.dpcm` container scheme
//! ([`crate::format`]) under a different magic: a 12-byte header
//! (`"DPCS"`, `u16` version, `u16` section count, CRC-32 of bytes 0..8)
//! followed by sections framed as `tag + u64 length + payload + u32
//! payload CRC`. Any flipped byte anywhere in the file is rejected at
//! load with the damaged section's name and byte offset — the same
//! corruption contract as `.dpcm`, pinned by the same style of
//! randomized tests.
//!
//! Sections, in fixed order:
//!
//! | tag    | name     | contents                                          |
//! |--------|----------|---------------------------------------------------|
//! | `SCHM` | schema   | attribute specs (same payload layout as `.dpcm`)  |
//! | `SHRD` | shard    | shard index/count, total rows, row range, seed    |
//! | `CONF` | config   | ε, k-ratio, margin method, τ strategy, seeds      |
//! | `MRGN` | margins  | the shard's published noisy histogram per attr    |
//! | `TAUS` | tau      | τ row sample per attr + within-shard concordance  |
//! | `BDGT` | budget   | the shard's sub-ledger in exact nano-ε            |
//!
//! The τ layer stores the shard's **sampled records** (in subsample
//! order) and its within-shard concordance per attribute pair: exactly
//! what the exact cross-shard merge needs — the coordinator recomputes
//! rank structures from the samples, scores cross-shard concordance,
//! pools `S / C(n, 2)`, and draws the Laplace noise at merge time
//! against the pooled sensitivity (DESIGN.md §14).

use crate::codec::{ByteReader, ByteWriter};
use crate::format::{
    decode_schema, encode_framed, encode_schema_payload, field_err, split_framed, Framing,
    SectionInfo, StoreError,
};
use crate::AttributeSpec;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// File magic: the first four bytes of every `.dpcs` shard summary.
pub const SHARD_MAGIC: [u8; 4] = *b"DPCS";

/// Newest `.dpcs` format version this codec reads and writes.
pub const SHARD_FORMAT_VERSION: u16 = 1;

/// Section tags, in their required file order.
const SECTION_ORDER: [&[u8; 4]; 6] = [b"SCHM", b"SHRD", b"CONF", b"MRGN", b"TAUS", b"BDGT"];

/// Human-readable names matching [`SECTION_ORDER`] (used in errors).
const SECTION_NAMES: [&str; 6] = ["schema", "shard", "config", "margins", "tau", "budget"];

/// The `.dpcs` container's framing constants.
const DPCS_FRAMING: Framing = Framing {
    magic: SHARD_MAGIC,
    min_version: 1,
    max_version: SHARD_FORMAT_VERSION,
    section_order: &SECTION_ORDER,
    section_names: &SECTION_NAMES,
};

/// The Kendall record-sampling strategy a shard fit ran with, as wire
/// data (mirrors `dpcopula`'s `SamplingStrategy` without depending on
/// it — modelstore stays the bottom layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingSpec {
    /// Every shard row participates in the τ estimate.
    Full,
    /// The paper's recommended sample size, capped at the row count.
    Auto,
    /// A fixed global sample-size target.
    Fixed(u64),
}

impl SamplingSpec {
    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            SamplingSpec::Full => 0,
            SamplingSpec::Auto => 1,
            SamplingSpec::Fixed(_) => 2,
        }
    }

    /// The fixed target, `0` for the non-fixed strategies.
    pub fn fixed_k(self) -> u64 {
        match self {
            SamplingSpec::Fixed(k) => k,
            _ => 0,
        }
    }
}

/// The fit configuration a shard ran under. Every shard of one
/// distributed fit must carry identical values here — the merge refuses
/// mixed configurations, naming the culprit file.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFitConfig {
    /// Total privacy budget ε of the whole fit.
    pub epsilon: f64,
    /// Budget split ratio: margins get `k·ε`, correlations `(1-k)·ε`.
    pub k_ratio: f64,
    /// `MarginRegistry` name of the 1-D publisher.
    pub margin_method: String,
    /// Kendall record-sampling strategy.
    pub strategy: SamplingSpec,
    /// The base seed every stream generator derives from.
    pub base_seed: u64,
    /// Rows per sampling chunk of the eventual model (provenance the
    /// merged `.dpcm` must carry; part of the released identity).
    pub sample_chunk: u64,
    /// The stream-key scheme pin (`splitmix64x3/xoshiro256++`).
    pub scheme: String,
}

/// One sub-ledger expenditure in exact nano-ε (lossless, unlike the
/// `f64` epsilon of `.dpcm` ledger entries — the merge needs the exact
/// integers to reproduce the in-process ledger byte for byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpend {
    /// What the budget bought (e.g. `margins`).
    pub label: String,
    /// Nano-ε spent on it.
    pub neps: u64,
}

/// Within-shard concordance summary of one attribute pair: the integer
/// concordant-minus-discordant sum over the shard's sampled rows and
/// the number of comparable pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConcordance {
    /// Concordant minus discordant pair count.
    pub s: i64,
    /// Comparable pair count `C(sampled, 2)`.
    pub pairs: u64,
}

/// One shard's durable contribution to a distributed fit — the
/// serialized form of `dpcopula::shard::ShardSummary` plus the shard
/// topology and fit configuration needed to validate and merge it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardArtifact {
    /// Released schema, one spec per attribute (identical across
    /// shards of one fit).
    pub schema: Vec<AttributeSpec>,
    /// This shard's index in `0..shard_count`.
    pub shard_index: u64,
    /// Total shard count of the fit.
    pub shard_count: u64,
    /// Total rows of the whole fit input (all shards).
    pub total_rows: u64,
    /// First input row (inclusive) this shard covered.
    pub row_start: u64,
    /// One past the last input row this shard covered.
    pub row_end: u64,
    /// Logical stream index of the shard (`= shard_index`).
    pub seed_index: u64,
    /// The fit configuration the shard ran under.
    pub config: ShardFitConfig,
    /// The shard's published noisy histogram per attribute.
    pub noisy_margins: Vec<Vec<f64>>,
    /// The shard's τ record sample, one column per attribute in
    /// subsample order (empty for single-attribute fits, which have no
    /// pairs to estimate).
    pub sampled: Vec<Vec<u32>>,
    /// Within-shard concordance per attribute pair, pair ids in
    /// `(i, j)` lexicographic order (empty for single-attribute fits).
    pub within: Vec<ShardConcordance>,
    /// The shard's budget sub-ledger, in spend order, exact nano-ε.
    pub ledger: Vec<ShardSpend>,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn encode_shard(a: &ShardArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(a.shard_index);
    w.put_u64(a.shard_count);
    w.put_u64(a.total_rows);
    w.put_u64(a.row_start);
    w.put_u64(a.row_end);
    w.put_u64(a.seed_index);
    w.into_bytes()
}

fn encode_config(c: &ShardFitConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64(c.epsilon);
    w.put_f64(c.k_ratio);
    w.put_str(&c.margin_method);
    w.put_u8(c.strategy.tag());
    w.put_u64(c.strategy.fixed_k());
    w.put_u64(c.base_seed);
    w.put_u64(c.sample_chunk);
    w.put_str(&c.scheme);
    w.into_bytes()
}

fn encode_margins(a: &ShardArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(a.noisy_margins.len() as u32);
    for counts in &a.noisy_margins {
        w.put_u64(counts.len() as u64);
        for &c in counts {
            w.put_f64(c);
        }
    }
    w.into_bytes()
}

fn encode_tau(a: &ShardArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(a.sampled.len() as u32);
    w.put_u64(a.sampled.first().map(|c| c.len()).unwrap_or(0) as u64);
    for col in &a.sampled {
        for &v in col {
            w.put_u32(v);
        }
    }
    w.put_u32(a.within.len() as u32);
    for c in &a.within {
        w.put_u64(c.s as u64);
        w.put_u64(c.pairs);
    }
    w.into_bytes()
}

fn encode_budget(a: &ShardArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(a.ledger.len() as u32);
    for e in &a.ledger {
        w.put_str(&e.label);
        w.put_u64(e.neps);
    }
    w.into_bytes()
}

/// Encodes the shard artifact into `.dpcs` bytes. Deterministic: the
/// same artifact always produces the same bytes.
pub fn encode_shard_artifact(a: &ShardArtifact) -> Vec<u8> {
    let payloads: [Vec<u8>; 6] = [
        encode_schema_payload(&a.schema),
        encode_shard(a),
        encode_config(&a.config),
        encode_margins(a),
        encode_tau(a),
        encode_budget(a),
    ];
    encode_framed(&DPCS_FRAMING, SHARD_FORMAT_VERSION, &payloads)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct ShardTopology {
    shard_index: u64,
    shard_count: u64,
    total_rows: u64,
    row_start: u64,
    row_end: u64,
    seed_index: u64,
}

fn decode_shard(payload: &[u8], base: usize) -> Result<ShardTopology, StoreError> {
    let err = field_err("shard", base);
    let mut r = ByteReader::new(payload);
    let shard_index = r.u64("shard index").map_err(&err)?;
    let count_at = r.position();
    let shard_count = r.u64("shard count").map_err(&err)?;
    let rows_at = r.position();
    let total_rows = r.u64("total rows").map_err(&err)?;
    let range_at = r.position();
    let row_start = r.u64("row start").map_err(&err)?;
    let row_end = r.u64("row end").map_err(&err)?;
    let seed_index = r.u64("seed index").map_err(&err)?;
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "shard",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    if shard_count == 0 {
        return Err(StoreError::Malformed {
            section: "shard",
            offset: base + count_at,
            reason: "zero shard count".into(),
        });
    }
    if shard_index >= shard_count {
        return Err(StoreError::Malformed {
            section: "shard",
            offset: base,
            reason: format!("shard index {shard_index} not in 0..{shard_count}"),
        });
    }
    if shard_count > total_rows {
        return Err(StoreError::Malformed {
            section: "shard",
            offset: base + rows_at,
            reason: format!("{shard_count} shards over {total_rows} total rows"),
        });
    }
    if row_start >= row_end || row_end > total_rows {
        return Err(StoreError::Malformed {
            section: "shard",
            offset: base + range_at,
            reason: format!("bad row range [{row_start}, {row_end}) of {total_rows} rows"),
        });
    }
    Ok(ShardTopology {
        shard_index,
        shard_count,
        total_rows,
        row_start,
        row_end,
        seed_index,
    })
}

fn decode_config(payload: &[u8], base: usize) -> Result<ShardFitConfig, StoreError> {
    let err = field_err("config", base);
    let mut r = ByteReader::new(payload);
    let epsilon = r.f64("epsilon").map_err(&err)?;
    let k_at = r.position();
    let k_ratio = r.f64("k ratio").map_err(&err)?;
    let method_at = r.position();
    let margin_method = r.str("margin method").map_err(&err)?;
    let tag_at = r.position();
    let tag = r.u8("strategy tag").map_err(&err)?;
    let k = r.u64("strategy k").map_err(&err)?;
    let base_seed = r.u64("base seed").map_err(&err)?;
    let chunk_at = r.position();
    let sample_chunk = r.u64("sample chunk").map_err(&err)?;
    let scheme = r.str("stream scheme").map_err(&err)?;
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "config",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(StoreError::Malformed {
            section: "config",
            offset: base,
            reason: format!("non-positive epsilon {epsilon}"),
        });
    }
    if !k_ratio.is_finite() || k_ratio <= 0.0 {
        return Err(StoreError::Malformed {
            section: "config",
            offset: base + k_at,
            reason: format!("non-positive k ratio {k_ratio}"),
        });
    }
    if margin_method.is_empty() {
        return Err(StoreError::Malformed {
            section: "config",
            offset: base + method_at,
            reason: "empty margin method".into(),
        });
    }
    let strategy = match tag {
        0 => SamplingSpec::Full,
        1 => SamplingSpec::Auto,
        2 => SamplingSpec::Fixed(k),
        other => {
            return Err(StoreError::Malformed {
                section: "config",
                offset: base + tag_at,
                reason: format!("unknown sampling strategy tag {other}"),
            })
        }
    };
    if sample_chunk == 0 {
        return Err(StoreError::Malformed {
            section: "config",
            offset: base + chunk_at,
            reason: "zero sample chunk".into(),
        });
    }
    Ok(ShardFitConfig {
        epsilon,
        k_ratio,
        margin_method,
        strategy,
        base_seed,
        sample_chunk,
        scheme,
    })
}

fn decode_margins(
    payload: &[u8],
    base: usize,
    schema: &[AttributeSpec],
) -> Result<Vec<Vec<f64>>, StoreError> {
    let err = field_err("margins", base);
    let mut r = ByteReader::new(payload);
    let m_at = r.position();
    let m = r.u32("margin count").map_err(&err)? as usize;
    if m != schema.len() {
        return Err(StoreError::Malformed {
            section: "margins",
            offset: base + m_at,
            reason: format!("{m} margins for {} schema attributes", schema.len()),
        });
    }
    let mut margins = Vec::with_capacity(m);
    for attr in schema {
        let len_at = r.position();
        let len = r.u64("margin length").map_err(&err)? as usize;
        if len != attr.domain {
            return Err(StoreError::Malformed {
                section: "margins",
                offset: base + len_at,
                reason: format!(
                    "margin of `{}` has {len} bins for domain {}",
                    attr.name, attr.domain
                ),
            });
        }
        let mut counts = Vec::with_capacity(len);
        for _ in 0..len {
            counts.push(r.f64("margin count").map_err(&err)?);
        }
        margins.push(counts);
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "margins",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok(margins)
}

fn decode_tau(
    payload: &[u8],
    base: usize,
    m: usize,
    shard_rows: u64,
) -> Result<(Vec<Vec<u32>>, Vec<ShardConcordance>), StoreError> {
    let err = field_err("tau", base);
    let mut r = ByteReader::new(payload);
    let cols_at = r.position();
    let cols = r.u32("sampled column count").map_err(&err)? as usize;
    let want_cols = if m > 1 { m } else { 0 };
    if cols != want_cols {
        return Err(StoreError::Malformed {
            section: "tau",
            offset: base + cols_at,
            reason: format!("{cols} sampled columns for {m} attributes (want {want_cols})"),
        });
    }
    let len_at = r.position();
    let len = r.u64("sampled length").map_err(&err)? as usize;
    if cols == 0 && len != 0 {
        return Err(StoreError::Malformed {
            section: "tau",
            offset: base + len_at,
            reason: format!("{len} sampled rows with no sampled columns"),
        });
    }
    if len as u64 > shard_rows {
        return Err(StoreError::Malformed {
            section: "tau",
            offset: base + len_at,
            reason: format!("{len} sampled rows exceed the shard's {shard_rows} rows"),
        });
    }
    let mut sampled = Vec::with_capacity(cols);
    for _ in 0..cols {
        let mut col = Vec::with_capacity(len);
        for _ in 0..len {
            col.push(r.u32("sampled value").map_err(&err)?);
        }
        sampled.push(col);
    }
    let pairs_at = r.position();
    let n_pairs = r.u32("within pair count").map_err(&err)? as usize;
    let want_pairs = if m > 1 { m * (m - 1) / 2 } else { 0 };
    if n_pairs != want_pairs {
        return Err(StoreError::Malformed {
            section: "tau",
            offset: base + pairs_at,
            reason: format!(
                "{n_pairs} within-shard concordances for {m} attributes (want {want_pairs})"
            ),
        });
    }
    let mut within = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let s = r.u64("within s").map_err(&err)? as i64;
        let pairs = r.u64("within pairs").map_err(&err)?;
        within.push(ShardConcordance { s, pairs });
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "tau",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok((sampled, within))
}

fn decode_budget(payload: &[u8], base: usize) -> Result<Vec<ShardSpend>, StoreError> {
    let err = field_err("budget", base);
    let mut r = ByteReader::new(payload);
    let n = r.u32("ledger entry count").map_err(&err)? as usize;
    let mut ledger = Vec::with_capacity(n);
    for _ in 0..n {
        let label = r.str("ledger label").map_err(&err)?;
        let neps = r.u64("ledger neps").map_err(&err)?;
        ledger.push(ShardSpend { label, neps });
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "budget",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok(ledger)
}

/// Decodes `.dpcs` bytes into a [`ShardArtifact`], validating all
/// checksums and structural invariants. Corruption is rejected with the
/// damaged section's name and byte offset — never a panic.
pub fn decode_shard_artifact(bytes: &[u8]) -> Result<ShardArtifact, StoreError> {
    let (_version, sections) = split_framed(bytes, &DPCS_FRAMING)?;
    let at = |i: usize| (sections[i].1, sections[i].0.payload_offset);

    let (p, o) = at(0);
    let schema = decode_schema(p, o)?;
    let (p, o) = at(1);
    let topo = decode_shard(p, o)?;
    let (p, o) = at(2);
    let config = decode_config(p, o)?;
    let (p, o) = at(3);
    let noisy_margins = decode_margins(p, o, &schema)?;
    let (p, o) = at(4);
    let (sampled, within) = decode_tau(p, o, schema.len(), topo.row_end - topo.row_start)?;
    let (p, o) = at(5);
    let ledger = decode_budget(p, o)?;

    Ok(ShardArtifact {
        schema,
        shard_index: topo.shard_index,
        shard_count: topo.shard_count,
        total_rows: topo.total_rows,
        row_start: topo.row_start,
        row_end: topo.row_end,
        seed_index: topo.seed_index,
        config,
        noisy_margins,
        sampled,
        within,
        ledger,
    })
}

/// Lists the sections of an encoded `.dpcs` artifact after validating
/// all framing and checksums — the integrity check without the decode.
pub fn probe_shard_artifact(bytes: &[u8]) -> Result<Vec<SectionInfo>, StoreError> {
    Ok(split_framed(bytes, &DPCS_FRAMING)?
        .1
        .into_iter()
        .map(|(i, _)| i)
        .collect())
}

impl ShardArtifact {
    /// Encodes into `.dpcs` bytes (see [`encode_shard_artifact`]).
    pub fn encode(&self) -> Vec<u8> {
        encode_shard_artifact(self)
    }

    /// Decodes from `.dpcs` bytes (see [`decode_shard_artifact`]).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        decode_shard_artifact(bytes)
    }

    /// Writes the encoded artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.encode())?;
        f.flush()?;
        Ok(())
    }

    /// Reads and decodes a shard artifact from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        decode_shard_artifact(&bytes)
    }

    /// Rows this shard covered.
    pub fn rows(&self) -> u64 {
        self.row_end - self.row_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardArtifact {
        ShardArtifact {
            schema: vec![AttributeSpec::new("age", 4), AttributeSpec::new("inc", 3)],
            shard_index: 1,
            shard_count: 3,
            total_rows: 10,
            row_start: 4,
            row_end: 7,
            seed_index: 1,
            config: ShardFitConfig {
                epsilon: 1.0,
                k_ratio: 0.5,
                margin_method: "efpa".into(),
                strategy: SamplingSpec::Fixed(8),
                base_seed: 42,
                sample_chunk: 8192,
                scheme: "splitmix64x3/xoshiro256++".into(),
            },
            noisy_margins: vec![vec![1.5, -0.25, 3.0, 0.5], vec![2.0, 2.5, 0.0]],
            sampled: vec![vec![0, 3, 1], vec![2, 0, 1]],
            within: vec![ShardConcordance { s: -1, pairs: 3 }],
            ledger: vec![ShardSpend {
                label: "margins".into(),
                neps: 500_000_000,
            }],
        }
    }

    #[test]
    fn round_trip_is_lossless() {
        let a = sample();
        let bytes = a.encode();
        assert_eq!(ShardArtifact::decode(&bytes).unwrap(), a);
        // Deterministic encoding.
        assert_eq!(a.encode(), bytes);
    }

    #[test]
    fn magic_and_version_are_pinned() {
        let bytes = sample().encode();
        assert_eq!(&bytes[0..4], b"DPCS");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 1);
        let sections = probe_shard_artifact(&bytes).unwrap();
        let names: Vec<&str> = sections.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["schema", "shard", "config", "margins", "tau", "budget"]
        );
    }

    #[test]
    fn rejects_a_dpcm_magic() {
        let mut bytes = sample().encode();
        bytes[3] = b'M';
        assert!(matches!(
            ShardArtifact::decode(&bytes),
            Err(StoreError::BadMagic { .. }) | Err(StoreError::HeaderChecksum { .. })
        ));
    }

    #[test]
    fn structural_invariants_are_validated() {
        // Encode logically broken artifacts and check the decode names
        // the offending section instead of panicking.
        let mut bad_range = sample();
        bad_range.row_end = bad_range.row_start;
        match ShardArtifact::decode(&bad_range.encode()) {
            Err(StoreError::Malformed { section, .. }) => assert_eq!(section, "shard"),
            other => panic!("expected shard Malformed, got {other:?}"),
        }

        let mut bad_index = sample();
        bad_index.shard_index = 3;
        match ShardArtifact::decode(&bad_index.encode()) {
            Err(StoreError::Malformed { section, .. }) => assert_eq!(section, "shard"),
            other => panic!("expected shard Malformed, got {other:?}"),
        }

        let mut bad_margin = sample();
        bad_margin.noisy_margins[1].pop();
        match ShardArtifact::decode(&bad_margin.encode()) {
            Err(StoreError::Malformed { section, .. }) => assert_eq!(section, "margins"),
            other => panic!("expected margins Malformed, got {other:?}"),
        }

        let mut bad_tau = sample();
        bad_tau.within.clear();
        match ShardArtifact::decode(&bad_tau.encode()) {
            Err(StoreError::Malformed { section, .. }) => assert_eq!(section, "tau"),
            other => panic!("expected tau Malformed, got {other:?}"),
        }

        let mut oversampled = sample();
        oversampled.sampled = vec![vec![0; 5], vec![0; 5]];
        match ShardArtifact::decode(&oversampled.encode()) {
            Err(StoreError::Malformed { section, .. }) => assert_eq!(section, "tau"),
            other => panic!("expected tau Malformed, got {other:?}"),
        }
    }

    #[test]
    fn single_attribute_shards_have_an_empty_tau_layer() {
        let mut a = sample();
        a.schema.truncate(1);
        a.noisy_margins.truncate(1);
        a.sampled.clear();
        a.within.clear();
        let bytes = a.encode();
        assert_eq!(ShardArtifact::decode(&bytes).unwrap(), a);
    }
}
