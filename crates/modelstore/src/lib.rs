//! # modelstore — the `.dpcm` model artifact store
//!
//! DPCopula's output is really a *model*: the ε-budgeted published
//! marginal histograms plus the repaired correlation matrix. Everything
//! after publication — CDF construction, Cholesky factorisation,
//! sampling any number of synthetic rows — is post-processing that
//! consumes no additional privacy budget. This crate makes that model a
//! durable, self-describing artifact so a deployment can **fit once and
//! serve forever** without touching the raw data or the budget again:
//!
//! * [`ModelArtifact`] — the released object as plain data: schema,
//!   margins, correlation matrix, copula family, spent-budget ledger and
//!   RNG provenance;
//! * the `.dpcm` wire format ([`format`]) — versioned, little-endian,
//!   with a CRC-32 per section so any single-byte corruption is rejected
//!   at load with the damaged section's name and byte offset;
//! * the `.dpcs` shard-summary format ([`shard_format`]) — one shard's
//!   sufficient statistics for a distributed fit, under the same framing
//!   and corruption-rejection contract;
//! * an in-repo [`crc32`](crc32::crc32) and byte [`codec`] — the
//!   workspace is dependency-free by design.
//!
//! The serving layer lives in `dpcopula::model` (`FittedModel`), which
//! wraps an artifact with a ready Cholesky factor and deterministic
//! row-window sampling.
//!
//! ```
//! use modelstore::{AttributeSpec, BudgetEntry, BudgetLedger, CopulaFamily,
//!                  ModelArtifact, RngProvenance};
//!
//! let artifact = ModelArtifact {
//!     schema: vec![AttributeSpec::new("age", 3)],
//!     margin_method: "efpa".into(),
//!     margins: vec![vec![5.0, 2.0, 1.0]],
//!     correlation: mathkit::Matrix::identity(1),
//!     family: CopulaFamily::Gaussian,
//!     ledger: BudgetLedger {
//!         total: 1.0,
//!         entries: vec![BudgetEntry { label: "margins".into(), epsilon: 1.0 }],
//!         shard_entries: vec![],
//!     },
//!     provenance: RngProvenance {
//!         base_seed: 42,
//!         sample_chunk: 8192,
//!         sampler_stream: 6,
//!         scheme: "splitmix64x3/xoshiro256++".into(),
//!         shards: vec![],
//!     },
//! };
//! let bytes = artifact.encode();
//! assert_eq!(ModelArtifact::decode(&bytes).unwrap(), artifact);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod codec;
pub mod crc32;
pub mod format;
pub mod shard_format;

pub use artifact::{
    AttributeSpec, BudgetEntry, BudgetLedger, CopulaFamily, ModelArtifact, RngProvenance, ShardInfo,
};
pub use format::{
    decode, decode_observed, encode, probe, probe_version, SectionInfo, StoreError, FORMAT_VERSION,
    MAGIC,
};
pub use shard_format::{
    decode_shard_artifact, encode_shard_artifact, probe_shard_artifact, SamplingSpec,
    ShardArtifact, ShardConcordance, ShardFitConfig, ShardSpend, SHARD_FORMAT_VERSION, SHARD_MAGIC,
};
