//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! workspace is dependency-free by design, so the checksum every `.dpcm`
//! section carries is computed here rather than by a crates.io crate.
//!
//! A CRC-32 detects *every* single-bit and single-byte error, which is
//! exactly the integrity guarantee the artifact format promises: flip any
//! one byte of a stored model and the load rejects it.

/// The standard reflected polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF` — the
/// same convention as zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `bytes` — the *identity* hash for artifact
/// bytes, as opposed to the *integrity* CRC-32 above.
///
/// The distinction matters for `.dpcm` files: because every section is
/// followed by its own CRC-32 and CRC is linear, rewriting a section
/// (payload *and* its trailing CRC) changes the whole-file CRC-32 by a
/// CRC codeword — i.e. not at all. Whole-file CRC-32 is therefore
/// constant across all valid artifacts with equal section lengths and
/// useless as a cache key; FNV-1a shares no structure with the CRC and
/// sees every rewrite.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The canonical check value of the CRC-32/ISO-HDLC family.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0..257u16).map(|i| (i * 31 % 251) as u8).collect();
        let clean = crc32(&data);
        for pos in 0..data.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = data.clone();
                corrupt[pos] ^= flip;
                assert_ne!(crc32(&corrupt), clean, "pos={pos} flip={flip:#x}");
            }
        }
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn fnv1a64_sees_crc_codeword_deltas() {
        // The exact blind spot of the whole-stream CRC-32: a message
        // with its own CRC-32 appended. Flipping payload bytes and
        // fixing up the trailing CRC leaves crc32() of the whole block
        // unchanged — fnv1a64 must still differ.
        let payload_a = b"section payload A".to_vec();
        let payload_b = b"section payload B".to_vec();
        let block = |p: &[u8]| {
            let mut v = p.to_vec();
            v.extend_from_slice(&crc32(p).to_le_bytes());
            v
        };
        let (a, b) = (block(&payload_a), block(&payload_b));
        assert_eq!(crc32(&a), crc32(&b), "the CRC blind spot this guards");
        assert_ne!(fnv1a64(&a), fnv1a64(&b));
    }
}
