//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! workspace is dependency-free by design, so the checksum every `.dpcm`
//! section carries is computed here rather than by a crates.io crate.
//!
//! A CRC-32 detects *every* single-bit and single-byte error, which is
//! exactly the integrity guarantee the artifact format promises: flip any
//! one byte of a stored model and the load rejects it.

/// The standard reflected polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF` — the
/// same convention as zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The canonical check value of the CRC-32/ISO-HDLC family.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0..257u16).map(|i| (i * 31 % 251) as u8).collect();
        let clean = crc32(&data);
        for pos in 0..data.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = data.clone();
                corrupt[pos] ^= flip;
                assert_ne!(crc32(&corrupt), clean, "pos={pos} flip={flip:#x}");
            }
        }
    }
}
