//! The `.dpcm` wire format: a versioned, checksummed, fully
//! self-describing binary container for a [`ModelArtifact`].
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! header (12 bytes):
//!   0   magic          4 bytes   "DPCM"
//!   4   version        u16       format version (1 or 2)
//!   6   section count  u16       6 in versions 1 and 2
//!   8   header CRC     u32       CRC-32 of bytes 0..8
//! then `section count` sections, each:
//!   +0  tag            4 bytes   ASCII section name
//!   +4  payload length u64
//!   +12 payload        `length` bytes
//!   +β  payload CRC    u32       CRC-32 of the payload
//! ```
//!
//! Sections, in fixed order: `SCHM` (schema), `MRGN` (published
//! marginal counts), `CORR` (repaired correlation matrix), `COPL` (copula
//! family + params), `BDGT` (spent-budget ledger), `PROV` (RNG
//! provenance). Every section carries its own CRC, so a single flipped
//! byte anywhere in the file is rejected at load with the section name
//! and byte offset of the damage.
//!
//! **Version 2** extends two payloads with sharded-fit provenance, after
//! the version-1 fields:
//!
//! * `BDGT` — `u32` shard-ledger count, then per shard a `u32` entry
//!   count followed by `(label, f64 epsilon)` entries: the per-shard
//!   sub-ledgers whose per-label maximum (parallel composition) the
//!   combined entries record;
//! * `PROV` — `u32` shard count, then per shard
//!   `(u64 row_start, u64 row_end, u64 seed_index)`.
//!
//! The encoder emits the **oldest version able to represent the
//! artifact**: a fit without shard provenance encodes as version 1,
//! byte-identical to a pre-v2 writer, so single-shard artifacts remain
//! stable and old readers keep accepting them.
//!
//! ## Versioning policy
//!
//! The version is bumped whenever a change would make old readers decode
//! wrong values (new/removed/reordered sections, payload layout changes).
//! Readers accept every version from 1 up to [`FORMAT_VERSION`] and
//! reject versions they don't know rather than guessing —
//! a model artifact is a privacy-bearing release, so "best effort"
//! parsing is never acceptable.

use crate::artifact::{
    AttributeSpec, BudgetEntry, BudgetLedger, CopulaFamily, ModelArtifact, RngProvenance, ShardInfo,
};
use crate::codec::{ByteReader, ByteWriter, ReadError};
use crate::crc32::crc32;
use mathkit::Matrix;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// File magic: the first four bytes of every `.dpcm` artifact.
pub const MAGIC: [u8; 4] = *b"DPCM";

/// Newest format version this codec reads and writes. The encoder emits
/// the oldest version able to represent the artifact (version 1 when no
/// shard provenance is present), so bumping this never perturbs the
/// bytes of artifacts that don't use the new fields.
pub const FORMAT_VERSION: u16 = 2;

/// Oldest format version this codec still reads.
const MIN_VERSION: u16 = 1;

/// Section tags, in their required file order (same in every version).
const SECTION_ORDER: [&[u8; 4]; 6] = [b"SCHM", b"MRGN", b"CORR", b"COPL", b"BDGT", b"PROV"];

/// Human-readable names matching [`SECTION_ORDER`] (used in errors).
const SECTION_NAMES: [&str; 6] = [
    "schema",
    "margins",
    "correlation",
    "copula",
    "budget",
    "provenance",
];

/// Everything that can go wrong while decoding a `.dpcm` artifact. Where
/// a failure is localised, the error names the section and the absolute
/// byte offset of the damage.
///
/// Non-exhaustive: future format versions may add failure modes, so
/// downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// The file does not start with the container's magic (`DPCM` for
    /// model artifacts, `DPCS` for shard summaries).
    BadMagic {
        /// The four bytes actually found (zero-padded if shorter).
        found: [u8; 4],
        /// The magic the container requires.
        expected: [u8; 4],
    },
    /// The format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this reader accepts for the container.
        max: u16,
    },
    /// The header failed its own CRC — the fixed 12-byte prelude is
    /// damaged.
    HeaderChecksum {
        /// CRC stored in the file.
        expected: u32,
        /// CRC recomputed over the header bytes.
        actual: u32,
    },
    /// The file ended before a section's declared extent.
    Truncated {
        /// Section being read.
        section: &'static str,
        /// Absolute byte offset where reading stopped.
        offset: usize,
    },
    /// A section tag was not the one the fixed v1 order requires.
    UnexpectedSection {
        /// Tag the order requires here.
        expected: &'static str,
        /// Tag actually present.
        found: [u8; 4],
        /// Absolute byte offset of the tag.
        offset: usize,
    },
    /// A section's payload failed its CRC — the payload bytes are
    /// damaged.
    SectionChecksum {
        /// Damaged section.
        section: &'static str,
        /// Absolute byte offset of the section's payload.
        offset: usize,
        /// CRC stored in the file.
        expected: u32,
        /// CRC recomputed over the payload.
        actual: u32,
    },
    /// A payload passed its CRC but does not decode to a valid value
    /// (impossible via [`encode`]; means a logically inconsistent writer).
    Malformed {
        /// Offending section.
        section: &'static str,
        /// Absolute byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
    /// Bytes remain after the last section.
    TrailingBytes {
        /// Absolute byte offset of the first trailing byte.
        offset: usize,
    },
    /// An entry of a watched model directory failed to read or decode.
    /// Directory scanners (a serving daemon's model registry) must wrap
    /// the underlying failure in this named error instead of silently
    /// skipping the entry — a model that stops being servable is an
    /// operational event, not noise.
    DirEntry {
        /// Path of the offending directory entry.
        path: String,
        /// What went wrong with it.
        source: Box<StoreError>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic { found, expected } => {
                write!(f, "bad artifact magic: {found:?} != {expected:?}")
            }
            StoreError::UnsupportedVersion { found, max } => write!(
                f,
                "unsupported artifact version {found} (this reader understands <= {max})"
            ),
            StoreError::HeaderChecksum { expected, actual } => write!(
                f,
                "header checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
            ),
            StoreError::Truncated { section, offset } => {
                write!(
                    f,
                    "truncated in section `{section}` at byte offset {offset}"
                )
            }
            StoreError::UnexpectedSection {
                expected,
                found,
                offset,
            } => write!(
                f,
                "expected section `{expected}` at byte offset {offset}, found tag {found:?}"
            ),
            StoreError::SectionChecksum {
                section,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in section `{section}` (payload at byte offset {offset}): \
                 stored {expected:#010x}, computed {actual:#010x}"
            ),
            StoreError::Malformed {
                section,
                offset,
                reason,
            } => write!(
                f,
                "malformed section `{section}` at byte offset {offset}: {reason}"
            ),
            StoreError::TrailingBytes { offset } => {
                write!(
                    f,
                    "trailing bytes after final section at byte offset {offset}"
                )
            }
            StoreError::DirEntry { path, source } => {
                write!(f, "model directory entry {path}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Location and extent of one section inside an encoded artifact, as
/// reported by [`probe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Human-readable section name.
    pub name: &'static str,
    /// Absolute byte offset of the section's payload.
    pub payload_offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// The payload's CRC-32 as stored.
    pub crc: u32,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes a schema payload — shared verbatim by the `.dpcm` `SCHM`
/// section and the `.dpcs` shard-summary format.
pub(crate) fn encode_schema_payload(schema: &[AttributeSpec]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(schema.len() as u32);
    for attr in schema {
        w.put_str(&attr.name);
        w.put_u64(attr.domain as u64);
        w.put_u32(attr.bin_edges.len() as u32);
        for &e in &attr.bin_edges {
            w.put_f64(e);
        }
    }
    w.into_bytes()
}

fn encode_schema(a: &ModelArtifact) -> Vec<u8> {
    encode_schema_payload(&a.schema)
}

fn encode_margins(a: &ModelArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&a.margin_method);
    w.put_u32(a.margins.len() as u32);
    for counts in &a.margins {
        w.put_u64(counts.len() as u64);
        for &c in counts {
            w.put_f64(c);
        }
    }
    w.into_bytes()
}

fn encode_correlation(a: &ModelArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(a.correlation.rows() as u64);
    for &v in a.correlation.as_slice() {
        w.put_f64(v);
    }
    w.into_bytes()
}

fn encode_copula(a: &ModelArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(a.family.tag());
    let params = a.family.params();
    w.put_u32(params.len() as u32);
    for p in params {
        w.put_f64(p);
    }
    w.into_bytes()
}

fn encode_budget(a: &ModelArtifact, version: u16) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64(a.ledger.total);
    w.put_u32(a.ledger.entries.len() as u32);
    for e in &a.ledger.entries {
        w.put_str(&e.label);
        w.put_f64(e.epsilon);
    }
    if version >= 2 {
        w.put_u32(a.ledger.shard_entries.len() as u32);
        for shard in &a.ledger.shard_entries {
            w.put_u32(shard.len() as u32);
            for e in shard {
                w.put_str(&e.label);
                w.put_f64(e.epsilon);
            }
        }
    }
    w.into_bytes()
}

fn encode_provenance(a: &ModelArtifact, version: u16) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(a.provenance.base_seed);
    w.put_u64(a.provenance.sample_chunk);
    w.put_u64(a.provenance.sampler_stream);
    w.put_str(&a.provenance.scheme);
    if version >= 2 {
        w.put_u32(a.provenance.shards.len() as u32);
        for s in &a.provenance.shards {
            w.put_u64(s.row_start);
            w.put_u64(s.row_end);
            w.put_u64(s.seed_index);
        }
    }
    w.into_bytes()
}

/// The oldest format version able to represent `a`: version 1 unless
/// the artifact carries sharded-fit provenance or per-shard sub-ledgers.
fn required_version(a: &ModelArtifact) -> u16 {
    if a.provenance.shards.is_empty() && a.ledger.shard_entries.is_empty() {
        1
    } else {
        2
    }
}

/// Encodes the artifact into `.dpcm` bytes. Deterministic: the same
/// artifact always produces the same bytes (there is no timestamp or
/// other ambient state in the format). The version written is the oldest
/// able to represent the artifact — see [`FORMAT_VERSION`].
pub fn encode(a: &ModelArtifact) -> Vec<u8> {
    let version = required_version(a);
    let payloads: [Vec<u8>; 6] = [
        encode_schema(a),
        encode_margins(a),
        encode_correlation(a),
        encode_copula(a),
        encode_budget(a, version),
        encode_provenance(a, version),
    ];
    encode_framed(&DPCM_FRAMING, version, &payloads)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Maps a primitive read failure inside a section payload to a
/// file-absolute [`StoreError::Malformed`].
pub(crate) fn field_err(
    section: &'static str,
    payload_offset: usize,
) -> impl Fn(ReadError) -> StoreError {
    move |e: ReadError| StoreError::Malformed {
        section,
        offset: payload_offset + e.offset,
        reason: format!("unreadable field `{}`", e.what),
    }
}

/// Section payload slices paired with their framing info, as returned by
/// [`split_sections`] alongside the header version.
pub(crate) type SectionSlices<'a> = Vec<(SectionInfo, &'a [u8])>;

/// The framing parameters of one artifact container — `.dpcm` and
/// `.dpcs` share the identical header + section layout (and therefore
/// the identical corruption-rejection behaviour), differing only in
/// these constants.
pub(crate) struct Framing {
    /// File magic.
    pub magic: [u8; 4],
    /// Oldest readable version.
    pub min_version: u16,
    /// Newest readable version.
    pub max_version: u16,
    /// Section tags, in required file order.
    pub section_order: &'static [&'static [u8; 4]],
    /// Human-readable names matching `section_order`.
    pub section_names: &'static [&'static str],
}

/// Encodes a framed container: header (magic, version, section count,
/// header CRC) followed by each payload as `tag + u64 len + payload +
/// u32 payload CRC`.
pub(crate) fn encode_framed(framing: &Framing, version: u16, payloads: &[Vec<u8>]) -> Vec<u8> {
    assert_eq!(payloads.len(), framing.section_order.len());
    let mut w = ByteWriter::new();
    w.put_bytes(&framing.magic);
    w.put_u16(version);
    w.put_u16(framing.section_order.len() as u16);
    let header_crc = {
        let mut head = Vec::with_capacity(8);
        head.extend_from_slice(&framing.magic);
        head.extend_from_slice(&version.to_le_bytes());
        head.extend_from_slice(&(framing.section_order.len() as u16).to_le_bytes());
        crc32(&head)
    };
    w.put_u32(header_crc);
    for (tag, payload) in framing.section_order.iter().zip(payloads) {
        w.put_bytes(*tag);
        w.put_u64(payload.len() as u64);
        w.put_bytes(payload);
        w.put_u32(crc32(payload));
    }
    w.into_bytes()
}

/// Validates header + section framing against `framing`, returning the
/// header version and each section's payload slice and location without
/// decoding payload contents.
pub(crate) fn split_framed<'a>(
    bytes: &'a [u8],
    framing: &Framing,
) -> Result<(u16, SectionSlices<'a>), StoreError> {
    if bytes.len() < 12 {
        return Err(StoreError::Truncated {
            section: "header",
            offset: bytes.len(),
        });
    }
    let magic = &bytes[0..4];
    if magic != framing.magic {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(StoreError::BadMagic {
            found,
            expected: framing.magic,
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !(framing.min_version..=framing.max_version).contains(&version) {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            max: framing.max_version,
        });
    }
    let stored_crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let actual_crc = crc32(&bytes[0..8]);
    if stored_crc != actual_crc {
        return Err(StoreError::HeaderChecksum {
            expected: stored_crc,
            actual: actual_crc,
        });
    }
    let count = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    if count != framing.section_order.len() {
        return Err(StoreError::Malformed {
            section: "header",
            offset: 6,
            reason: format!(
                "version {version} requires {} sections, header declares {count}",
                framing.section_order.len()
            ),
        });
    }

    let mut out = Vec::with_capacity(count);
    let mut pos = 12usize;
    for (tag, &name) in framing.section_order.iter().zip(framing.section_names) {
        if bytes.len() - pos < 12 {
            return Err(StoreError::Truncated {
                section: name,
                offset: bytes.len(),
            });
        }
        let found = &bytes[pos..pos + 4];
        if found != *tag {
            let mut f = [0u8; 4];
            f.copy_from_slice(found);
            return Err(StoreError::UnexpectedSection {
                expected: name,
                found: f,
                offset: pos,
            });
        }
        let len_bytes: [u8; 8] = bytes[pos + 4..pos + 12].try_into().expect("8 bytes");
        let len = u64::from_le_bytes(len_bytes) as usize;
        let payload_offset = pos + 12;
        if bytes.len() - payload_offset < len + 4 {
            return Err(StoreError::Truncated {
                section: name,
                offset: bytes.len(),
            });
        }
        let payload = &bytes[payload_offset..payload_offset + len];
        let crc_at = payload_offset + len;
        let stored = u32::from_le_bytes(bytes[crc_at..crc_at + 4].try_into().expect("4 bytes"));
        let actual = crc32(payload);
        if stored != actual {
            return Err(StoreError::SectionChecksum {
                section: name,
                offset: payload_offset,
                expected: stored,
                actual,
            });
        }
        out.push((
            SectionInfo {
                name,
                payload_offset,
                payload_len: len,
                crc: stored,
            },
            payload,
        ));
        pos = crc_at + 4;
    }
    if pos != bytes.len() {
        return Err(StoreError::TrailingBytes { offset: pos });
    }
    Ok((version, out))
}

/// The `.dpcm` container's framing constants.
const DPCM_FRAMING: Framing = Framing {
    magic: MAGIC,
    min_version: MIN_VERSION,
    max_version: FORMAT_VERSION,
    section_order: &SECTION_ORDER,
    section_names: &SECTION_NAMES,
};

/// Validates header + section framing, returning the header version and
/// each section's payload slice and location without decoding payload
/// contents.
fn split_sections(bytes: &[u8]) -> Result<(u16, SectionSlices<'_>), StoreError> {
    split_framed(bytes, &DPCM_FRAMING)
}

/// Lists the sections of an encoded artifact after validating all
/// framing and checksums — the integrity check without the decode.
pub fn probe(bytes: &[u8]) -> Result<Vec<SectionInfo>, StoreError> {
    Ok(split_sections(bytes)?
        .1
        .into_iter()
        .map(|(i, _)| i)
        .collect())
}

/// The format version an encoded artifact carries, after validating all
/// framing and checksums.
pub fn probe_version(bytes: &[u8]) -> Result<u16, StoreError> {
    Ok(split_sections(bytes)?.0)
}

pub(crate) fn decode_schema(payload: &[u8], base: usize) -> Result<Vec<AttributeSpec>, StoreError> {
    let err = field_err("schema", base);
    let mut r = ByteReader::new(payload);
    let m = r.u32("attribute count").map_err(&err)? as usize;
    let mut schema = Vec::with_capacity(m);
    for _ in 0..m {
        let name = r.str("attribute name").map_err(&err)?;
        let domain_at = r.position();
        let domain = r.u64("attribute domain").map_err(&err)? as usize;
        if domain == 0 {
            return Err(StoreError::Malformed {
                section: "schema",
                offset: base + domain_at,
                reason: format!("attribute `{name}` has an empty domain"),
            });
        }
        let edges_at = r.position();
        let n_edges = r.u32("bin edge count").map_err(&err)? as usize;
        if n_edges != 0 && n_edges != domain + 1 {
            return Err(StoreError::Malformed {
                section: "schema",
                offset: base + edges_at,
                reason: format!(
                    "attribute `{name}`: {n_edges} bin edges for domain {domain} \
                     (want 0 or {})",
                    domain + 1
                ),
            });
        }
        let mut bin_edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            bin_edges.push(r.f64("bin edge").map_err(&err)?);
        }
        schema.push(AttributeSpec {
            name,
            domain,
            bin_edges,
        });
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "schema",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok(schema)
}

fn decode_margins(
    payload: &[u8],
    base: usize,
    schema: &[AttributeSpec],
) -> Result<(String, Vec<Vec<f64>>), StoreError> {
    let err = field_err("margins", base);
    let mut r = ByteReader::new(payload);
    let method = r.str("margin method").map_err(&err)?;
    let m_at = r.position();
    let m = r.u32("margin count").map_err(&err)? as usize;
    if m != schema.len() {
        return Err(StoreError::Malformed {
            section: "margins",
            offset: base + m_at,
            reason: format!("{m} margins for {} schema attributes", schema.len()),
        });
    }
    let mut margins = Vec::with_capacity(m);
    for attr in schema {
        let len_at = r.position();
        let len = r.u64("margin length").map_err(&err)? as usize;
        if len != attr.domain {
            return Err(StoreError::Malformed {
                section: "margins",
                offset: base + len_at,
                reason: format!(
                    "margin of `{}` has {len} bins for domain {}",
                    attr.name, attr.domain
                ),
            });
        }
        let mut counts = Vec::with_capacity(len);
        for _ in 0..len {
            counts.push(r.f64("margin count").map_err(&err)?);
        }
        margins.push(counts);
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "margins",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok((method, margins))
}

fn decode_correlation(payload: &[u8], base: usize, dims: usize) -> Result<Matrix, StoreError> {
    let err = field_err("correlation", base);
    let mut r = ByteReader::new(payload);
    let dim = r.u64("matrix dimension").map_err(&err)? as usize;
    if dim != dims {
        return Err(StoreError::Malformed {
            section: "correlation",
            offset: base,
            reason: format!("{dim}x{dim} matrix for {dims} schema attributes"),
        });
    }
    let mut data = Vec::with_capacity(dim * dim);
    for _ in 0..dim * dim {
        data.push(r.f64("matrix entry").map_err(&err)?);
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "correlation",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok(Matrix::from_vec(dim, dim, data))
}

fn decode_copula(payload: &[u8], base: usize) -> Result<CopulaFamily, StoreError> {
    let err = field_err("copula", base);
    let mut r = ByteReader::new(payload);
    let tag = r.u8("family tag").map_err(&err)?;
    let count_at = r.position();
    let n_params = r.u32("param count").map_err(&err)? as usize;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        params.push(r.f64("family param").map_err(&err)?);
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "copula",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    let wrong_arity = |want: usize| StoreError::Malformed {
        section: "copula",
        offset: base + count_at,
        reason: format!("family tag {tag} takes {want} params, got {n_params}"),
    };
    match tag {
        0 => {
            if n_params != 0 {
                return Err(wrong_arity(0));
            }
            Ok(CopulaFamily::Gaussian)
        }
        1 => {
            if n_params != 1 {
                return Err(wrong_arity(1));
            }
            Ok(CopulaFamily::StudentT { dof: params[0] })
        }
        2 => {
            if n_params != 1 {
                return Err(wrong_arity(1));
            }
            Ok(CopulaFamily::Hybrid {
                threshold: params[0] as u32,
            })
        }
        other => Err(StoreError::Malformed {
            section: "copula",
            offset: base,
            reason: format!("unknown copula family tag {other}"),
        }),
    }
}

fn decode_budget(payload: &[u8], base: usize, version: u16) -> Result<BudgetLedger, StoreError> {
    let err = field_err("budget", base);
    let mut r = ByteReader::new(payload);
    let total = r.f64("budget total").map_err(&err)?;
    let n = r.u32("ledger entry count").map_err(&err)? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let label = r.str("ledger label").map_err(&err)?;
        let epsilon = r.f64("ledger epsilon").map_err(&err)?;
        entries.push(BudgetEntry { label, epsilon });
    }
    let mut shard_entries = Vec::new();
    if version >= 2 {
        let shards = r.u32("shard ledger count").map_err(&err)? as usize;
        shard_entries.reserve(shards);
        for _ in 0..shards {
            let k = r.u32("shard ledger entry count").map_err(&err)? as usize;
            let mut shard = Vec::with_capacity(k);
            for _ in 0..k {
                let label = r.str("shard ledger label").map_err(&err)?;
                let epsilon = r.f64("shard ledger epsilon").map_err(&err)?;
                shard.push(BudgetEntry { label, epsilon });
            }
            shard_entries.push(shard);
        }
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "budget",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok(BudgetLedger {
        total,
        entries,
        shard_entries,
    })
}

fn decode_provenance(
    payload: &[u8],
    base: usize,
    version: u16,
) -> Result<RngProvenance, StoreError> {
    let err = field_err("provenance", base);
    let mut r = ByteReader::new(payload);
    let base_seed = r.u64("base seed").map_err(&err)?;
    let sample_chunk = r.u64("sample chunk").map_err(&err)?;
    let sampler_stream = r.u64("sampler stream").map_err(&err)?;
    let scheme = r.str("stream scheme").map_err(&err)?;
    let mut shards = Vec::new();
    if version >= 2 {
        let count = r.u32("shard count").map_err(&err)? as usize;
        shards.reserve(count);
        for i in 0..count {
            let at = r.position();
            let row_start = r.u64("shard row start").map_err(&err)?;
            let row_end = r.u64("shard row end").map_err(&err)?;
            let seed_index = r.u64("shard seed index").map_err(&err)?;
            if row_end <= row_start {
                return Err(StoreError::Malformed {
                    section: "provenance",
                    offset: base + at,
                    reason: format!("shard {i} has empty row range [{row_start}, {row_end})"),
                });
            }
            shards.push(ShardInfo {
                row_start,
                row_end,
                seed_index,
            });
        }
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed {
            section: "provenance",
            offset: base + r.position(),
            reason: "unconsumed bytes at end of payload".into(),
        });
    }
    Ok(RngProvenance {
        base_seed,
        sample_chunk,
        sampler_stream,
        scheme,
        shards,
    })
}

/// Decodes `.dpcm` bytes into a [`ModelArtifact`], validating all
/// checksums and structural invariants.
pub fn decode(bytes: &[u8]) -> Result<ModelArtifact, StoreError> {
    decode_inner(bytes, &obskit::MetricsSink::off())
}

/// [`decode`] with observability: records the artifact size in
/// `modelstore_load_bytes_total`, per-section decode latency in
/// `modelstore_section_parse_ns{section}` (tag names `SCHM`…`PROV`),
/// and the outcome in `modelstore_loads_total` /
/// `modelstore_corruption_rejects_total`. A disabled sink makes this
/// exactly [`decode`].
pub fn decode_observed(
    bytes: &[u8],
    sink: &obskit::MetricsSink,
) -> Result<ModelArtifact, StoreError> {
    if sink.enabled() {
        sink.add(
            obskit::names::MODELSTORE_LOAD_BYTES_TOTAL,
            obskit::Unit::Bytes,
            bytes.len() as u64,
        );
    }
    let result = decode_inner(bytes, sink);
    if sink.enabled() {
        let outcome = match result {
            Ok(_) => obskit::names::MODELSTORE_LOADS_TOTAL,
            Err(_) => obskit::names::MODELSTORE_CORRUPTION_REJECTS_TOTAL,
        };
        sink.add(outcome, obskit::Unit::Count, 1);
    }
    result
}

/// Times one section decode into
/// `modelstore_section_parse_ns{section=<tag>}`.
fn timed_section<T>(
    sink: &obskit::MetricsSink,
    tag: &'static str,
    f: impl FnOnce() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    if !sink.enabled() {
        return f();
    }
    let watch = obskit::Stopwatch::start();
    let out = f();
    sink.observe_labeled(
        obskit::names::MODELSTORE_SECTION_PARSE_NS,
        &[("section", tag)],
        obskit::Unit::Nanos,
        watch.elapsed_ns(),
    );
    out
}

fn decode_inner(bytes: &[u8], sink: &obskit::MetricsSink) -> Result<ModelArtifact, StoreError> {
    let (version, sections) = split_sections(bytes)?;
    let at = |i: usize| (sections[i].1, sections[i].0.payload_offset);

    let (p, o) = at(0);
    let schema = timed_section(sink, "SCHM", || decode_schema(p, o))?;
    let (p, o) = at(1);
    let (margin_method, margins) = timed_section(sink, "MRGN", || decode_margins(p, o, &schema))?;
    let (p, o) = at(2);
    let correlation = timed_section(sink, "CORR", || decode_correlation(p, o, schema.len()))?;
    let (p, o) = at(3);
    let family = timed_section(sink, "COPL", || decode_copula(p, o))?;
    let (p, o) = at(4);
    let ledger = timed_section(sink, "BDGT", || decode_budget(p, o, version))?;
    let (p, o) = at(5);
    let provenance = timed_section(sink, "PROV", || decode_provenance(p, o, version))?;

    Ok(ModelArtifact {
        schema,
        margin_method,
        margins,
        correlation,
        family,
        ledger,
        provenance,
    })
}

impl ModelArtifact {
    /// Encodes into `.dpcm` bytes (see [`encode`]).
    pub fn encode(&self) -> Vec<u8> {
        encode(self)
    }

    /// Decodes from `.dpcm` bytes (see [`decode`]).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        decode(bytes)
    }

    /// Writes the encoded artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.encode())?;
        f.flush()?;
        Ok(())
    }

    /// Reads and decodes an artifact from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        decode(&bytes)
    }
}
