//! Hand-rolled little-endian byte codec — the primitive layer under the
//! `.dpcm` section payloads (house style: `crates/queryeval/src/persist.rs`
//! does the same for workload CSVs, just in text).
//!
//! [`ByteWriter`] appends fixed-width little-endian scalars and
//! length-prefixed strings to a growable buffer; [`ByteReader`] walks a
//! byte slice with an explicit cursor and reports *where* a read fell off
//! the end, so the format layer can turn that into a section-precise
//! error.

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer into its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern —
    /// lossless, so round-tripping preserves NaN payloads and signed
    /// zeros bit-for-bit.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a UTF-8 string as a `u32` byte length followed by the
    /// bytes.
    ///
    /// # Panics
    /// Panics on strings longer than `u32::MAX` bytes.
    pub fn put_str(&mut self, s: &str) {
        let len = u32::try_from(s.len()).expect("string fits u32 length prefix");
        self.put_u32(len);
        self.put_bytes(s.as_bytes());
    }
}

/// A failed primitive read: the absolute cursor position within the slice
/// being decoded plus what was being read there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Byte offset (within the reader's slice) where the read started.
    pub offset: usize,
    /// What the reader was trying to decode.
    pub what: &'static str,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failed to read {} at byte offset {}",
            self.what, self.offset
        )
    }
}

/// Cursor-based little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current cursor position (bytes consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the cursor has consumed the whole slice.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ReadError> {
        if self.remaining() < n {
            return Err(ReadError {
                offset: self.pos,
                what,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, ReadError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, ReadError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, ReadError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, ReadError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, ReadError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, ReadError> {
        let start = self.pos;
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ReadError {
            offset: start,
            what,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("margins §2");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64("f").unwrap().is_nan());
        assert_eq!(r.str("g").unwrap(), "margins §2");
        assert!(r.is_exhausted());
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut w = ByteWriter::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.into_bytes(), vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn reads_past_the_end_report_offset() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        r.u16("head").unwrap();
        let err = r.u32("tail").unwrap_err();
        assert_eq!(
            err,
            ReadError {
                offset: 2,
                what: "tail"
            }
        );
        assert!(err.to_string().contains("offset 2"));
    }

    #[test]
    fn invalid_utf8_is_rejected_at_the_string_start() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let err = ByteReader::new(&bytes).str("name").unwrap_err();
        assert_eq!(err.offset, 0);
    }
}
