//! The fitted-model data: everything a DPCopula fit releases, as plain
//! owned values with no behaviour attached. The serving layer in
//! `dpcopula::model` turns this into a ready-to-sample `FittedModel`; the
//! format layer ([`crate::format`]) turns it into `.dpcm` bytes and back.

use mathkit::Matrix;

/// One attribute of the released schema.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    /// Human-readable attribute name.
    pub name: String,
    /// Integer domain size: values live on `0..domain`.
    pub domain: usize,
    /// Optional bin edges mapping the integer domain back to a continuous
    /// attribute (`domain + 1` monotone values). Empty means the domain
    /// *is* the attribute: unit-width integer bins.
    pub bin_edges: Vec<f64>,
}

impl AttributeSpec {
    /// An integer-domain attribute (no bin edges).
    pub fn new(name: impl Into<String>, domain: usize) -> Self {
        Self {
            name: name.into(),
            domain,
            bin_edges: Vec::new(),
        }
    }
}

/// Which copula family the correlation matrix parameterises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CopulaFamily {
    /// Gaussian copula — the paper's model (Algorithm 3).
    Gaussian,
    /// Student-t copula with the given degrees of freedom (extension).
    StudentT {
        /// Degrees of freedom `nu > 0`.
        dof: f64,
    },
    /// Hybrid: small domains via multi-dimensional histogram, the rest
    /// via the Gaussian copula (Algorithm 6). `threshold` is the domain
    /// size below which an attribute went to the histogram side.
    Hybrid {
        /// Small-domain threshold.
        threshold: u32,
    },
}

impl CopulaFamily {
    /// Stable wire tag of the family.
    pub fn tag(self) -> u8 {
        match self {
            CopulaFamily::Gaussian => 0,
            CopulaFamily::StudentT { .. } => 1,
            CopulaFamily::Hybrid { .. } => 2,
        }
    }

    /// Family parameters as a flat list (the wire representation).
    pub fn params(self) -> Vec<f64> {
        match self {
            CopulaFamily::Gaussian => Vec::new(),
            CopulaFamily::StudentT { dof } => vec![dof],
            CopulaFamily::Hybrid { threshold } => vec![f64::from(threshold)],
        }
    }

    /// Short human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            CopulaFamily::Gaussian => "gaussian",
            CopulaFamily::StudentT { .. } => "student-t",
            CopulaFamily::Hybrid { .. } => "hybrid",
        }
    }
}

/// One privacy-budget expenditure of the fit.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetEntry {
    /// What the budget bought (e.g. `margins`, `correlation`).
    pub label: String,
    /// Epsilon spent on it.
    pub epsilon: f64,
}

/// The spent-budget ledger: the DP accounting the artifact carries so a
/// consumer can audit what the release cost. Sampling from the artifact
/// spends nothing — it is post-processing of these expenditures.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    /// Total budget the fit was configured with.
    pub total: f64,
    /// Individual expenditures, in spend order. For a sharded fit these
    /// are the *combined* costs after parallel composition across the
    /// shards.
    pub entries: Vec<BudgetEntry>,
    /// Per-shard sub-ledgers of a sharded fit, one entry list per shard
    /// in shard order (format v2). Empty for single-shard fits, which
    /// keeps their encoding on format v1. The combined `entries` are the
    /// per-label maximum over these sub-ledgers (parallel composition:
    /// shards hold disjoint rows).
    pub shard_entries: Vec<Vec<BudgetEntry>>,
}

impl BudgetLedger {
    /// Sum of all recorded expenditures.
    pub fn spent(&self) -> f64 {
        self.entries.iter().map(|e| e.epsilon).sum()
    }
}

/// Provenance of one shard of a sharded fit: which rows of the fit
/// input it covered and which logical stream index its row subsample
/// drew under (format v2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// First input row (inclusive) the shard covered.
    pub row_start: u64,
    /// One past the last input row the shard covered.
    pub row_end: u64,
    /// Logical stream index the shard's Kendall row subsample derived
    /// under: `stream_rng(base_seed, STREAM_KENDALL_SAMPLE, seed_index)`.
    pub seed_index: u64,
}

/// How the fit's randomness was derived, recorded so that serving — at
/// any later time, on any machine, at any worker count — reproduces the
/// exact bytes the fit would have sampled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngProvenance {
    /// The base seed every stream generator derives from.
    pub base_seed: u64,
    /// Rows per sampling chunk. Chunk boundaries key the sampling
    /// streams, so this is part of the released value's identity.
    pub sample_chunk: u64,
    /// The stream id sampling chunks derive under (`STREAM_SAMPLER`).
    pub sampler_stream: u64,
    /// The stream-key scheme, e.g. `splitmix64x3/xoshiro256++` — a
    /// human-readable pin of the derivation in `parkit::stream_rng`.
    pub scheme: String,
    /// Per-shard fit provenance, in shard order (format v2). Empty for
    /// single-shard fits, which keeps their encoding on format v1.
    pub shards: Vec<ShardInfo>,
}

/// A fitted DPCopula model: the ε-budgeted published marginals plus the
/// repaired correlation matrix, with enough metadata to be fully
/// self-describing. Everything derivable from these fields (CDFs,
/// Cholesky factors, synthetic rows) is free post-processing.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Released schema, one spec per attribute.
    pub schema: Vec<AttributeSpec>,
    /// `MarginRegistry` name of the 1-D publisher that produced the
    /// margins (provenance; the counts themselves are already noisy).
    pub margin_method: String,
    /// Published noisy marginal counts, one histogram per attribute
    /// (pre-normalisation — the CDF is derived, so nothing is lost).
    pub margins: Vec<Vec<f64>>,
    /// The repaired DP correlation matrix `P~` (Algorithm 5 output).
    pub correlation: Matrix,
    /// Copula family the matrix parameterises.
    pub family: CopulaFamily,
    /// Spent-budget ledger.
    pub ledger: BudgetLedger,
    /// RNG provenance for reproducible serving.
    pub provenance: RngProvenance,
}

impl ModelArtifact {
    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.schema.len()
    }

    /// Content identity of the artifact's canonical `.dpcm` encoding —
    /// what a model registry caches decoded models under. Encoding is
    /// deterministic (no timestamps or ambient state), so two artifacts
    /// share a checksum exactly when they are equal, and for a
    /// canonically written `.dpcm` file this equals
    /// [`fnv1a64`](crate::crc32::fnv1a64) of the file's bytes.
    ///
    /// This is deliberately **not** the whole-file CRC-32: every
    /// section already carries its own CRC-32 right after its payload,
    /// and by CRC linearity `delta ‖ crc(delta)` is itself a CRC
    /// codeword — so *any* two valid artifacts with equal section
    /// lengths collide on the whole-file CRC-32 (see the
    /// `whole_file_crc32_is_blind_to_section_rewrites` test). Identity
    /// therefore uses an unrelated hash.
    pub fn checksum(&self) -> u64 {
        crate::crc32::fnv1a64(&self.encode())
    }

    /// Per-attribute domain sizes.
    pub fn domains(&self) -> Vec<usize> {
        self.schema.iter().map(|a| a.domain).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ModelArtifact {
        ModelArtifact {
            schema: vec![AttributeSpec::new("age", 3)],
            margin_method: "efpa".into(),
            margins: vec![vec![5.0, 2.0, 1.0]],
            correlation: mathkit::Matrix::identity(1),
            family: CopulaFamily::Gaussian,
            ledger: BudgetLedger {
                total: 1.0,
                entries: vec![BudgetEntry {
                    label: "margins".into(),
                    epsilon: 1.0,
                }],
                shard_entries: vec![],
            },
            provenance: RngProvenance {
                base_seed: 42,
                sample_chunk: 8192,
                sampler_stream: 6,
                scheme: "splitmix64x3/xoshiro256++".into(),
                shards: vec![],
            },
        }
    }

    #[test]
    fn checksum_is_the_hash_of_the_canonical_bytes() {
        let a = minimal();
        assert_eq!(a.checksum(), crate::crc32::fnv1a64(&a.encode()));
        // Stable across calls, and sensitive to any released value.
        assert_eq!(a.checksum(), a.checksum());
        let mut b = a.clone();
        b.margins[0][1] += 1.0;
        assert_ne!(a.checksum(), b.checksum());
        let mut c = a.clone();
        c.provenance.base_seed = 43;
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn whole_file_crc32_is_blind_to_section_rewrites() {
        // Why `checksum()` is not CRC-32: each `.dpcm` section stores
        // its own CRC-32 immediately after its payload, and the CRC of
        // `delta ‖ crc(delta)` is zero (the append property), so two
        // same-shape artifacts differing only in released values — here
        // the base seed — produce *different* bytes with *identical*
        // whole-file CRC-32. The FNV identity hash must still differ.
        let a = minimal();
        let mut c = a.clone();
        c.provenance.base_seed = 43;
        let (ea, ec) = (a.encode(), c.encode());
        assert_ne!(ea, ec);
        assert_eq!(crate::crc32::crc32(&ea), crate::crc32::crc32(&ec));
        assert_ne!(a.checksum(), c.checksum());
    }
}
