//! Property-based tests for the numerical substrate: transform
//! round-trips, factorisation postconditions, and function inverses must
//! hold for *arbitrary* well-formed inputs, not just the unit-test cases.
//!
//! Runs on `testkit::prop`: every failure prints the seed that
//! regenerates the counterexample (`TESTKIT_SEED=<seed> cargo test ...`).

use mathkit::cholesky::{cholesky, is_positive_definite, solve_spd};
use mathkit::correlation::{
    clamp_to_correlation, correlation_from_upper_triangle, is_correlation_shaped,
    repair_positive_definite,
};
use mathkit::dist::{Continuous, Exponential, Gamma, Gaussian, Uniform, Zipf};
use mathkit::eigen::eigen_symmetric;
use mathkit::fft::{fft, ifft, Complex};
use mathkit::matrix::Matrix;
use mathkit::special::{norm_cdf, norm_quantile};
use mathkit::stats::ranks;
use mathkit::wavelet::{haar_forward, haar_inverse};
use testkit::prop::vec;
use testkit::{prop_assert, property_tests};

property_tests! {
    fn fft_round_trips(values in vec(-1e6f64..1e6, 1..300)) {
        let x: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let back = ifft(&fft(&x));
        for (b, orig) in back.iter().zip(&x) {
            prop_assert!((b.re - orig.re).abs() < 1e-6 * (1.0 + orig.re.abs()));
            prop_assert!(b.im.abs() < 1e-5);
        }
    }

    fn fft_is_linear(
        a in vec(-1e3f64..1e3, 2..64),
        s in -10.0f64..10.0,
    ) {
        let x: Vec<Complex> = a.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let xs: Vec<Complex> = a.iter().map(|&v| Complex::new(v * s, 0.0)).collect();
        let fx = fft(&x);
        let fxs = fft(&xs);
        for (l, r) in fxs.iter().zip(&fx) {
            prop_assert!((l.re - r.re * s).abs() < 1e-6 * (1.0 + r.re.abs() * s.abs()));
        }
    }

    fn wavelet_round_trips(exp in 0u32..8, seed in 0u64..1000) {
        let n = 1usize << exp;
        let mut v = 0.37_f64 + seed as f64;
        let data: Vec<f64> = (0..n)
            .map(|_| {
                v = (v * 997.13).fract();
                v * 100.0 - 50.0
            })
            .collect();
        let back = haar_inverse(&haar_forward(&data));
        for (b, d) in back.iter().zip(&data) {
            prop_assert!((b - d).abs() < 1e-9);
        }
    }

    fn pd_repair_always_produces_pd_correlation(
        pairs in vec(-1.5f64..1.5, 3),
    ) {
        // 3x3 from arbitrary (possibly invalid) coefficients.
        let mut m = correlation_from_upper_triangle(3, &pairs);
        clamp_to_correlation(&mut m);
        let repaired = repair_positive_definite(&m);
        prop_assert!(is_positive_definite(&repaired));
        prop_assert!(is_correlation_shaped(&repaired, 1e-6));
    }

    fn cholesky_reconstructs(seed in 0u64..500, n in 1usize..6) {
        // Build SPD as A = B B^T + n*I.
        let mut v = seed as f64 * 0.123 + 0.5;
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                v = (v * 31.7 + 0.11).fract();
                b[(i, j)] = v - 0.5;
            }
        }
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let l = cholesky(&a).unwrap();
        prop_assert!(l.matmul(&l.transpose()).max_abs_diff(&a) < 1e-9);
    }

    fn spd_solve_inverts(seed in 0u64..200, n in 1usize..5) {
        let mut v = seed as f64 * 0.377 + 0.1;
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                v = (v * 13.1 + 0.7).fract();
                b[(i, j)] = v - 0.5;
            }
        }
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += 2.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let rhs = a.matvec(&x_true);
        let x = solve_spd(&a, &rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8);
        }
    }

    fn eigen_preserves_trace_and_reconstructs(seed in 0u64..300, n in 2usize..6) {
        let mut v = seed as f64 * 0.71 + 0.3;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                v = (v * 91.3 + 0.17).fract();
                let x = v * 4.0 - 2.0;
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let e = eigen_symmetric(&a);
        prop_assert!(e.reconstruct().max_abs_diff(&a) < 1e-8);
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let lambda_sum: f64 = e.values.iter().sum();
        prop_assert!((trace - lambda_sum).abs() < 1e-8);
    }

    fn norm_quantile_inverts_cdf(p in 1e-8f64..1.0) {
        let p = p.min(1.0 - 1e-8);
        prop_assert!((norm_cdf(norm_quantile(p)) - p).abs() < 1e-9);
    }

    fn continuous_quantiles_invert_cdfs(p in 0.001f64..0.999) {
        fn check<D: Continuous>(d: &D, p: f64) -> bool {
            (d.cdf(d.quantile(p)) - p).abs() < 1e-7
        }
        prop_assert!(check(&Gaussian::new(3.0, 2.0).unwrap(), p));
        prop_assert!(check(&Uniform::new(-1.0, 4.0).unwrap(), p));
        prop_assert!(check(&Exponential::new(0.7).unwrap(), p));
        prop_assert!(check(&Gamma::new(2.5, 1.4).unwrap(), p));
    }

    fn zipf_quantile_is_generalised_inverse(n in 1usize..200, s in 0.0f64..3.0, p in 0.0f64..1.0) {
        let z = Zipf::new(n, s).unwrap();
        let k = z.quantile(p);
        prop_assert!(z.cdf(k) >= p - 1e-12);
        if k > 0 {
            prop_assert!(z.cdf(k - 1) < p + 1e-12);
        }
    }

    fn batch_cdf_is_bit_identical_to_scalar(xs in vec(-40.0f64..40.0, 1..200)) {
        let mut out = vec![0.0; xs.len()];
        mathkit::batch::norm_cdf_slice(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            prop_assert!(o.to_bits() == norm_cdf(x).to_bits());
        }
        let mut in_place = xs.clone();
        mathkit::batch::norm_cdf_in_place(&mut in_place);
        prop_assert!(in_place == out);
    }

    fn batch_quantile_is_bit_identical_to_scalar(ps in vec(0.0f64..1.0, 1..200)) {
        // Push the closed endpoints in explicitly: the contract covers
        // the ±∞ returns at p ∈ {0, 1} too.
        let mut ps = ps.clone();
        ps.push(0.0);
        ps.push(1.0);
        let mut out = vec![0.0; ps.len()];
        mathkit::batch::norm_quantile_slice(&ps, &mut out);
        for (&p, &o) in ps.iter().zip(&out) {
            prop_assert!(o.to_bits() == norm_quantile(p).to_bits());
        }
    }

    fn blocked_cholesky_apply_matches_per_row(
        seed in 0u64..200,
        n in 1usize..80,
        rho in -0.2f64..0.9,
    ) {
        use mathkit::dist::MultivariateNormal;
        let d = 3;
        let p = mathkit::correlation::equicorrelation(d, rho.max(-0.45));
        let mvn = MultivariateNormal::new(&p).unwrap();
        let mut v = seed as f64 * 0.613 + 0.21;
        let z: Vec<Vec<f64>> = (0..d)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        v = (v * 127.3 + 0.19).fract();
                        v * 6.0 - 3.0
                    })
                    .collect()
            })
            .collect();
        let mut cols = z.clone();
        mvn.apply_lower_blocked(&mut cols);
        let l = mvn.cholesky_factor();
        for row in 0..n {
            for i in 0..d {
                let want: f64 = (0..=i).map(|k| l[(i, k)] * z[k][row]).sum();
                prop_assert!((cols[i][row] - want).abs() < 1e-12);
            }
        }
    }

    fn ranks_are_a_permutation_average(values in vec(-100i32..100, 1..50)) {
        let xs: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        let r = ranks(&xs);
        // Ranks sum to n(n+1)/2 regardless of ties.
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        // Order-preserving: xs[i] < xs[j] implies rank[i] < rank[j].
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] < xs[j] {
                    prop_assert!(r[i] < r[j]);
                }
            }
        }
    }
}
