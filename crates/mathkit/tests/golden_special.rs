//! Golden-value tests for the special functions: hard-coded
//! double-precision references (cross-checked against an independent
//! libm implementation) pin `erf`, `norm_cdf`, `norm_quantile` and
//! `ln_gamma` to 1e-12. These guard the numerical substrate against
//! regressions that property tests (which only check identities) would
//! miss.

use mathkit::special::{erf, ln_gamma, norm_cdf, norm_quantile};

fn assert_close(name: &str, x: f64, got: f64, want: f64, tol: f64) {
    let err = (got - want).abs();
    assert!(
        err <= tol,
        "{name}({x}) = {got:?}, want {want:?} (|err| = {err:e} > {tol:e})"
    );
}

#[test]
fn erf_matches_references() {
    // (x, erf(x)) — IEEE-754 double references.
    let refs = [
        (-3.0, -0.9999779095030014),
        (-2.0, -0.9953222650189527),
        (-1.5, -0.9661051464753108),
        (-1.0, -0.8427007929497149),
        (-0.5, -0.5204998778130465),
        (-0.1, -0.1124629160182849),
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753108),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (5.0, 0.9999999999984626),
    ];
    for (x, want) in refs {
        assert_close("erf", x, erf(x), want, 1e-12);
    }
}

#[test]
fn norm_cdf_matches_references() {
    // (x, Phi(x)) — standard normal CDF, double references.
    let refs = [
        (-3.0, 0.0013498980316300957),
        (-2.0, 0.02275013194817922),
        (-1.5, 0.06680720126885809),
        (-1.0, 0.15865525393145707),
        (-0.5, 0.3085375387259869),
        (-0.1, 0.460172162722971),
        (0.0, 0.5),
        (0.1, 0.539827837277029),
        (0.5, 0.6914624612740131),
        (1.0, 0.8413447460685429),
        (1.5, 0.9331927987311419),
        (2.0, 0.9772498680518208),
        (3.0, 0.9986501019683699),
        (5.0, 0.9999997133484281),
    ];
    for (x, want) in refs {
        assert_close("norm_cdf", x, norm_cdf(x), want, 1e-12);
    }
}

#[test]
fn norm_quantile_matches_references() {
    // (p, Phi^{-1}(p)) — classic quantile constants (Wichura AS241 is
    // good to ~1e-15 relative; the references themselves are the
    // correctly-rounded doubles).
    let refs = [
        (0.001, -3.090232306167813),
        (0.025, -1.959963984540054),
        (0.05, -1.6448536269514722),
        (0.1, -1.2815515655446004),
        (0.25, -0.6744897501960817),
        (0.5, 0.0),
        (0.75, 0.6744897501960817),
        (0.9, 1.2815515655446004),
        (0.95, 1.6448536269514722),
        (0.975, 1.959963984540054),
        (0.99, 2.3263478740408408),
        (0.995, 2.5758293035489004),
        (0.999, 3.090232306167813),
    ];
    for (p, want) in refs {
        assert_close("norm_quantile", p, norm_quantile(p), want, 1e-12);
    }
}

#[test]
fn ln_gamma_matches_references() {
    // (x, lnGamma(x)) — double references; tolerance is relative for the
    // large arguments where lnGamma itself is large.
    let refs: [(f64, f64); 13] = [
        (0.1, 2.2527126517342055),
        (0.5, 0.5723649429247004),
        (1.0, 0.0),
        (1.5, -0.12078223763524543),
        (2.0, 0.0),
        (2.5, 0.2846828704729196),
        (3.0, std::f64::consts::LN_2), // lnGamma(3) = ln 2! = ln 2
        (4.5, 2.453736570842443),
        (7.0, 6.579251212010102),
        (10.0, 12.801827480081467),
        (15.5, 26.53691449111561),
        (30.0, 71.257038967168),
        (100.0, 359.1342053695754),
    ];
    for (x, want) in refs {
        let tol = 1e-12 * want.abs().max(1.0);
        assert_close("ln_gamma", x, ln_gamma(x), want, tol);
    }
}
