//! Golden-value tests for the special functions: hard-coded
//! double-precision references (cross-checked against an independent
//! libm implementation) pin `erf`, `norm_cdf`, `norm_quantile` and
//! `ln_gamma` to 1e-12. These guard the numerical substrate against
//! regressions that property tests (which only check identities) would
//! miss.

use mathkit::dist::{Continuous, StudentT};
use mathkit::special::{erf, ln_gamma, norm_cdf, norm_quantile};

fn assert_close(name: &str, x: f64, got: f64, want: f64, tol: f64) {
    let err = (got - want).abs();
    assert!(
        err <= tol,
        "{name}({x}) = {got:?}, want {want:?} (|err| = {err:e} > {tol:e})"
    );
}

#[test]
fn erf_matches_references() {
    // (x, erf(x)) — IEEE-754 double references.
    let refs = [
        (-3.0, -0.9999779095030014),
        (-2.0, -0.9953222650189527),
        (-1.5, -0.9661051464753108),
        (-1.0, -0.8427007929497149),
        (-0.5, -0.5204998778130465),
        (-0.1, -0.1124629160182849),
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753108),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (5.0, 0.9999999999984626),
    ];
    for (x, want) in refs {
        assert_close("erf", x, erf(x), want, 1e-12);
    }
}

#[test]
fn norm_cdf_matches_references() {
    // (x, Phi(x)) — standard normal CDF, double references.
    let refs = [
        (-3.0, 0.0013498980316300957),
        (-2.0, 0.02275013194817922),
        (-1.5, 0.06680720126885809),
        (-1.0, 0.15865525393145707),
        (-0.5, 0.3085375387259869),
        (-0.1, 0.460172162722971),
        (0.0, 0.5),
        (0.1, 0.539827837277029),
        (0.5, 0.6914624612740131),
        (1.0, 0.8413447460685429),
        (1.5, 0.9331927987311419),
        (2.0, 0.9772498680518208),
        (3.0, 0.9986501019683699),
        (5.0, 0.9999997133484281),
    ];
    for (x, want) in refs {
        assert_close("norm_cdf", x, norm_cdf(x), want, 1e-12);
    }
}

#[test]
fn norm_quantile_matches_references() {
    // (p, Phi^{-1}(p)) — classic quantile constants (Wichura AS241 is
    // good to ~1e-15 relative; the references themselves are the
    // correctly-rounded doubles).
    let refs = [
        (0.001, -3.090232306167813),
        (0.025, -1.959963984540054),
        (0.05, -1.6448536269514722),
        (0.1, -1.2815515655446004),
        (0.25, -0.6744897501960817),
        (0.5, 0.0),
        (0.75, 0.6744897501960817),
        (0.9, 1.2815515655446004),
        (0.95, 1.6448536269514722),
        (0.975, 1.959963984540054),
        (0.99, 2.3263478740408408),
        (0.995, 2.5758293035489004),
        (0.999, 3.090232306167813),
    ];
    for (p, want) in refs {
        assert_close("norm_quantile", p, norm_quantile(p), want, 1e-12);
    }
}

/// Extreme-tail quantiles, p in {1e-12, 1 - 1e-12}: the copula sampler
/// feeds uniform draws straight into these inverses, so a synthetic row
/// landing this deep in a tail must still map to a finite value with the
/// right magnitude instead of saturating or going non-finite.
///
/// Note on the upper-tail references: `1.0 - 1e-12` rounds to the double
/// whose exact tail mass is 9.999778782798785e-13 — slightly *less* than
/// 1e-12 — so the upper-tail goldens are evaluated at that representable
/// tail, not at the unrepresentable "exactly 1e-12 below one". That is
/// also why the upper quantiles are slightly *larger* in magnitude than
/// their lower-tail mirrors: the asymmetry is the input rounding, not a
/// solver defect.
#[test]
fn norm_quantile_tails_match_references() {
    assert_close(
        "norm_quantile",
        1e-12,
        norm_quantile(1e-12),
        -7.034483825301132,
        1e-8,
    );
    assert_close(
        "norm_quantile",
        1.0 - 1e-12,
        norm_quantile(1.0 - 1e-12),
        7.0344869100478356,
        1e-8,
    );
    // The two tails agree to the input-rounding asymmetry and no more.
    let lo = norm_quantile(1e-12);
    let hi = norm_quantile(1.0 - 1e-12);
    assert!(
        (lo + hi).abs() < 1e-5,
        "tail asymmetry too large: {lo} {hi}"
    );
}

#[test]
fn student_t_quantile_tails_match_references() {
    // (df, lower = t^{-1}(1e-12), upper = t^{-1}(1 - 1e-12)) — computed
    // from the closed forms for df in {1, 2, 4} (t_1 = cot(pi q) etc.)
    // at the exact tail masses of the two representable inputs.
    let refs: [(f64, f64, f64); 3] = [
        (1.0, -318309886183.7907, 318316927901.77966),
        (2.0, -707106.7811854869, 707114.6025244079),
        (4.0, -1316.0727465592565, 1316.0800251221378),
    ];
    for (df, lower, upper) in refs {
        let t = StudentT::new(df).unwrap();
        let tol_lo = 1e-9 * lower.abs();
        let tol_hi = 1e-6 * upper.abs();
        assert_close(
            &format!("t{df}_quantile"),
            1e-12,
            t.quantile(1e-12),
            lower,
            tol_lo,
        );
        assert_close(
            &format!("t{df}_quantile"),
            1.0 - 1e-12,
            t.quantile(1.0 - 1e-12),
            upper,
            tol_hi,
        );
    }
    // Interior sanity at double precision: t_{0.975, 4} closed form.
    let t4 = StudentT::new(4.0).unwrap();
    assert_close(
        "t4_quantile",
        0.975,
        t4.quantile(0.975),
        2.7764451051977943,
        1e-9,
    );
    // Exact endpoints saturate to infinities, never NaN.
    for df in [1.0, 2.0, 4.0, 7.5] {
        let t = StudentT::new(df).unwrap();
        assert_eq!(t.quantile(0.0), f64::NEG_INFINITY, "df={df}");
        assert_eq!(t.quantile(1.0), f64::INFINITY, "df={df}");
    }
    // Deep-tail round trip for a df with no closed form: the solved
    // quantile must map back onto its target mass.
    let t5 = StudentT::new(5.0).unwrap();
    for p in [1e-12, 1e-9, 1e-4, 0.3, 0.7, 1.0 - 1e-9] {
        let x = t5.quantile(p);
        assert!(x.is_finite(), "t5.quantile({p}) = {x}");
        let back = t5.cdf(x);
        let scale = p.min(1.0 - p).max(1e-13);
        assert!(
            (back - p).abs() <= 1e-5 * scale + 1e-15,
            "round trip p={p}: cdf(quantile) = {back}"
        );
    }
}

#[test]
fn ln_gamma_matches_references() {
    // (x, lnGamma(x)) — double references; tolerance is relative for the
    // large arguments where lnGamma itself is large.
    let refs: [(f64, f64); 13] = [
        (0.1, 2.2527126517342055),
        (0.5, 0.5723649429247004),
        (1.0, 0.0),
        (1.5, -0.12078223763524543),
        (2.0, 0.0),
        (2.5, 0.2846828704729196),
        (3.0, std::f64::consts::LN_2), // lnGamma(3) = ln 2! = ln 2
        (4.5, 2.453736570842443),
        (7.0, 6.579251212010102),
        (10.0, 12.801827480081467),
        (15.5, 26.53691449111561),
        (30.0, 71.257038967168),
        (100.0, 359.1342053695754),
    ];
    for (x, want) in refs {
        let tol = 1e-12 * want.abs().max(1.0);
        assert_close("ln_gamma", x, ln_gamma(x), want, tol);
    }
}
