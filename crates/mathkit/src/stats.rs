//! Descriptive statistics and sample distances used across the workspace:
//! means, variances, Pearson correlation, ranks, and the Kolmogorov–Smirnov
//! statistic used by the convergence diagnostics (§4.3 of the paper).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Unbiased sample covariance of two equally long slices.
///
/// # Panics
/// Panics when lengths differ.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Pearson linear correlation coefficient; `0.0` when either side is
/// constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Mid-ranks of the data (ties get the average of their positions), 1-based
/// as in classical rank statistics.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // positions i..=j share the mid-rank.
        let r = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = r;
        }
        i = j + 1;
    }
    out
}

/// Two-sample Kolmogorov–Smirnov statistic `sup_x |F_a(x) - F_b(x)|`.
///
/// Used to empirically verify the convergence theorems (Thm 4.3): the KS
/// distance between original and synthetic margins should shrink as the
/// cardinality grows.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Empirical quantile with linear interpolation (type-7, the R default).
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut s = xs.to_vec();
    s.sort_by(|x, y| x.partial_cmp(y).expect("NaN in quantile input"));
    let h = p * (s.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    s[lo] + (h - lo as f64) * (s[hi] - s[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &yn) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r2 = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r2, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0];
        let b = [10.0, 11.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
    }

    #[test]
    fn ks_known_half() {
        // a places all mass at 0 and 2; b all at 1: max gap is 0.5 at x in [0,1).
        let a = [0.0, 2.0];
        let b = [1.0, 1.0];
        assert!((ks_statistic(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }
}
