//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Algorithm 3 of the paper samples synthetic points from `N(0, P~)`; the
//! standard route is `z = L * g` with `P~ = L L^T` and `g` i.i.d. standard
//! normal. Cholesky failure is also used as the canonical positive-definite
//! test inside the Rousseeuw–Molenberghs repair (see [`crate::correlation`]).

use crate::matrix::Matrix;

/// Error returned when a matrix is not positive definite (or not square /
/// not symmetric enough to factor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// Input was not square.
    NotSquare,
    /// A non-positive pivot was encountered at the given index, meaning the
    /// matrix is not positive definite.
    NotPositiveDefinite(usize),
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::NotPositiveDefinite(i) => {
                write!(f, "matrix is not positive definite (pivot {i} <= 0)")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// Only the lower triangle of `A` is read, so slight asymmetry from
/// floating-point noise is harmless.
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    if !a.is_square() {
        return Err(CholeskyError::NotSquare);
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(CholeskyError::NotPositiveDefinite(i));
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// True when `a` admits a Cholesky factorisation, i.e. is symmetric positive
/// definite (up to floating point).
pub fn is_positive_definite(a: &Matrix) -> bool {
    a.is_square() && cholesky(a).is_ok()
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// (forward then back substitution).
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let l = cholesky(a)?;
    let n = l.rows();
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Back: L^T x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Log-determinant of a symmetric positive-definite matrix via Cholesky:
/// `log det A = 2 * sum_i log L_ii`.
pub fn log_det_spd(a: &Matrix) -> Result<f64, CholeskyError> {
    let l = cholesky(a)?;
    Ok(2.0 * (0..l.rows()).map(|i| l[(i, i)].ln()).sum::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
        // L L^T reconstructs A.
        let rec = l.matmul(&l.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(cholesky(&a), Err(CholeskyError::NotPositiveDefinite(1)));
        assert!(!is_positive_definite(&a));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(cholesky(&a), Err(CholeskyError::NotSquare));
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x_true = vec![1.5, -2.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        // det = 12 - 4 = 8
        assert!((log_det_spd(&a).unwrap() - 8.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn identity_is_its_own_factor() {
        let i = Matrix::identity(5);
        let l = cholesky(&i).unwrap();
        assert!(l.max_abs_diff(&i) < 1e-15);
        assert!(is_positive_definite(&i));
    }
}
