//! Mergeable concordance summaries for Kendall's τ.
//!
//! Kendall's τ_a over `n` records is `S / C(n, 2)` where
//! `S = n_c - n_d` (concordant minus discordant pairs, ties contributing
//! zero). `S` is a plain integer sum over unordered record pairs, so it
//! decomposes exactly over any partition of the records into disjoint
//! shards:
//!
//! ```text
//! S_pooled = Σ_s S_within(s)  +  Σ_{s<t} S_cross(s, t)
//! ```
//!
//! Each shard contributes its within-shard `S` (a [`Concordance`]) and
//! every shard pair contributes a cross term counted by
//! [`cross_concordance`] in `O((n_a + n_b) log d)` — no shard ever sees
//! another shard's raw rows twice. Because every quantity is an integer
//! (exact in `f64` below 2^53), `merge(...)` followed by
//! [`Concordance::tau`] is **bit-identical** to computing τ over the
//! pooled records directly: this is the exactness contract the sharded
//! fit pipeline's 1-shard byte-identity pin relies on (DESIGN.md §12).

/// Integer concordance summary of one column pair over one record set:
/// the numerator `s = n_c - n_d` and the pair count `pairs = C(n, 2)` of
/// Kendall's τ_a. Summaries over disjoint record sets merge exactly via
/// [`merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Concordance {
    /// Concordant minus discordant pairs (ties contribute zero).
    pub s: i64,
    /// Total unordered record pairs, `C(n, 2)`.
    pub pairs: u64,
}

impl Concordance {
    /// A summary over zero or one records: no pairs, zero numerator.
    pub const EMPTY: Concordance = Concordance { s: 0, pairs: 0 };

    /// Kendall's τ_a, `s / pairs`.
    ///
    /// Bit-identical to the classical `(n_c - n_d) / C(n,2)` evaluation:
    /// both subtrahends are integers below 2^53, so `n_c - n_d` is exact
    /// in IEEE f64 and equals `s as f64`.
    ///
    /// # Panics
    /// Panics when `pairs == 0` (τ is undefined below 2 records).
    pub fn tau(&self) -> f64 {
        assert!(self.pairs > 0, "Kendall's tau needs at least one pair");
        self.s as f64 / self.pairs as f64
    }
}

/// Merges per-shard within-summaries with the cross-shard terms.
///
/// `cross_s` is the sum of [`cross_concordance`] over all shard pairs and
/// `cross_pairs` the number of cross-shard record pairs,
/// `Σ_{s<t} n_s · n_t`. The result is exactly the [`Concordance`] of the
/// pooled records.
pub fn merge(within: &[Concordance], cross_s: i64, cross_pairs: u64) -> Concordance {
    Concordance {
        s: within.iter().map(|c| c.s).sum::<i64>() + cross_s,
        pairs: within.iter().map(|c| c.pairs).sum::<u64>() + cross_pairs,
    }
}

/// A 1-indexed Fenwick (binary indexed) tree over dense ranks.
struct Fenwick(Vec<u32>);

impl Fenwick {
    fn new(groups: usize) -> Self {
        Fenwick(vec![0u32; groups + 1])
    }

    /// Adds one occurrence of rank `r` (0-indexed).
    fn add(&mut self, r: usize) {
        let mut k = r + 1;
        while k < self.0.len() {
            self.0[k] += 1;
            k += k & k.wrapping_neg();
        }
    }

    /// Count of inserted ranks strictly below `r` (0-indexed).
    fn below(&self, r: usize) -> u64 {
        let mut k = r;
        let mut s = 0u64;
        while k > 0 {
            s += u64::from(self.0[k]);
            k &= k - 1;
        }
        s
    }

    /// Count of inserted ranks `<= r` (0-indexed).
    fn at_or_below(&self, r: usize) -> u64 {
        self.below(r + 1)
    }
}

/// The cross-shard concordance term
/// `S_cross(A, B) = Σ_{i∈A, j∈B} sign(x_i - x_j) · sign(y_i - y_j)`
/// between two disjoint record shards, each given as parallel `(x, y)`
/// column slices.
///
/// Runs in `O((n_a + n_b) log d)` (`d` = distinct pooled y values): both
/// shards' records are walked in ascending-x order while two Fenwick
/// trees fold in the y ranks already passed, so each record scores its
/// concordant-minus-discordant balance against the *other* shard's
/// smaller-x records in one prefix query. Equal-x blocks are scored
/// before they are inserted, so tied-x cross pairs contribute zero, and
/// tied y values cancel in the prefix arithmetic — exactly τ_a's tie
/// convention.
///
/// # Panics
/// Panics when either shard's x and y slices differ in length.
pub fn cross_concordance(ax: &[u32], ay: &[u32], bx: &[u32], by: &[u32]) -> i64 {
    assert_eq!(ax.len(), ay.len(), "shard A column length mismatch");
    assert_eq!(bx.len(), by.len(), "shard B column length mismatch");
    if ax.is_empty() || bx.is_empty() {
        return 0;
    }

    // Dense y ranks over the pooled y values of both shards.
    let mut ys: Vec<u32> = ay.iter().chain(by.iter()).copied().collect();
    ys.sort_unstable();
    ys.dedup();
    let rank = |v: u32| ys.binary_search(&v).expect("pooled y value present") as u32;

    // (x, dense y rank, record is from shard B), ascending by x.
    let mut recs: Vec<(u32, u32, bool)> = ax
        .iter()
        .zip(ay)
        .map(|(&x, &y)| (x, rank(y), false))
        .chain(bx.iter().zip(by).map(|(&x, &y)| (x, rank(y), true)))
        .collect();
    recs.sort_unstable_by_key(|r| r.0);

    let mut fa = Fenwick::new(ys.len());
    let mut fb = Fenwick::new(ys.len());
    let (mut seen_a, mut seen_b) = (0i64, 0i64);
    let mut s = 0i64;
    let mut i = 0;
    while i < recs.len() {
        let mut j = i;
        while j < recs.len() && recs[j].0 == recs[i].0 {
            j += 1;
        }
        // Score the whole equal-x block against strictly-smaller-x
        // records of the other shard before inserting any of it.
        for &(_, r, from_b) in &recs[i..j] {
            let (other, seen_other) = if from_b { (&fa, seen_a) } else { (&fb, seen_b) };
            let below = other.below(r as usize) as i64;
            let at_or_below = other.at_or_below(r as usize) as i64;
            let above = seen_other - at_or_below;
            // Current record has the larger x, so smaller y on the other
            // side is concordant, larger y discordant, ties zero.
            s += below - above;
        }
        for &(_, r, from_b) in &recs[i..j] {
            if from_b {
                fb.add(r as usize);
                seen_b += 1;
            } else {
                fa.add(r as usize);
                seen_a += 1;
            }
        }
        i = j;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic oracle for the cross term.
    fn cross_naive(ax: &[u32], ay: &[u32], bx: &[u32], by: &[u32]) -> i64 {
        let mut s = 0i64;
        for (&xa, &ya) in ax.iter().zip(ay) {
            for (&xb, &yb) in bx.iter().zip(by) {
                let dx = i64::from(xa) - i64::from(xb);
                let dy = i64::from(ya) - i64::from(yb);
                s += dx.signum() * dy.signum();
            }
        }
        s
    }

    /// Quadratic oracle for a within-shard summary.
    fn within_naive(x: &[u32], y: &[u32]) -> Concordance {
        let n = x.len() as u64;
        let mut s = 0i64;
        for i in 0..x.len() {
            for j in (i + 1)..x.len() {
                let dx = i64::from(x[i]) - i64::from(x[j]);
                let dy = i64::from(y[i]) - i64::from(y[j]);
                s += dx.signum() * dy.signum();
            }
        }
        Concordance {
            s,
            pairs: n * (n - 1) / 2,
        }
    }

    fn lcg_cols(seed: u64, n: usize, domain: u32) -> (Vec<u32>, Vec<u32>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % domain
        };
        let x: Vec<u32> = (0..n).map(|_| next()).collect();
        let y: Vec<u32> = (0..n).map(|_| next()).collect();
        (x, y)
    }

    #[test]
    fn cross_concordance_matches_quadratic_oracle() {
        for seed in 0..20u64 {
            let domain = if seed % 2 == 0 { 5 } else { 1000 };
            let (ax, ay) = lcg_cols(seed * 2 + 1, 3 + (seed as usize % 40), domain);
            let (bx, by) = lcg_cols(seed * 2 + 2, 2 + (seed as usize % 37), domain);
            assert_eq!(
                cross_concordance(&ax, &ay, &bx, &by),
                cross_naive(&ax, &ay, &bx, &by),
                "seed {seed} domain {domain}"
            );
        }
    }

    #[test]
    fn cross_concordance_handles_empty_and_degenerate_shards() {
        assert_eq!(cross_concordance(&[], &[], &[1], &[2]), 0);
        assert_eq!(cross_concordance(&[1], &[2], &[], &[]), 0);
        // All-tied x: every cross pair ties in x, so the term is zero.
        assert_eq!(cross_concordance(&[7, 7], &[1, 2], &[7], &[3]), 0);
        // All-tied y likewise.
        assert_eq!(cross_concordance(&[1, 2], &[5, 5], &[3], &[5]), 0);
    }

    #[test]
    fn merged_summary_equals_pooled_summary_exactly() {
        for seed in 0..12u64 {
            let domain = if seed % 2 == 0 { 6 } else { 500 };
            let (x, y) = lcg_cols(seed + 100, 40 + seed as usize * 7, domain);
            // Split into three uneven shards.
            let cuts = [0, x.len() / 4, x.len() / 2 + 3, x.len()];
            let mut within = Vec::new();
            let mut cross_s = 0i64;
            let mut cross_pairs = 0u64;
            for w in cuts.windows(2) {
                within.push(within_naive(&x[w[0]..w[1]], &y[w[0]..w[1]]));
            }
            for a in 0..3 {
                for b in (a + 1)..3 {
                    let (a0, a1, b0, b1) = (cuts[a], cuts[a + 1], cuts[b], cuts[b + 1]);
                    cross_s += cross_concordance(&x[a0..a1], &y[a0..a1], &x[b0..b1], &y[b0..b1]);
                    cross_pairs += ((a1 - a0) * (b1 - b0)) as u64;
                }
            }
            let merged = merge(&within, cross_s, cross_pairs);
            let pooled = within_naive(&x, &y);
            assert_eq!(merged, pooled, "seed {seed}");
            assert_eq!(merged.tau().to_bits(), pooled.tau().to_bits());
        }
    }

    #[test]
    fn tau_of_perfect_orders() {
        let c = within_naive(&[1, 2, 3, 4], &[1, 2, 3, 4]);
        assert_eq!(c.tau(), 1.0);
        let c = within_naive(&[1, 2, 3, 4], &[4, 3, 2, 1]);
        assert_eq!(c.tau(), -1.0);
        assert_eq!(Concordance::EMPTY.pairs, 0);
    }
}
