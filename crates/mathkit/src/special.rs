//! Special functions: `erf`, `erfc`, the standard normal PDF/CDF, the
//! normal quantile (inverse CDF, Wichura's AS241 `PPND16`), and `ln Γ`.
//!
//! All routines are pure `f64` implementations accurate to close to machine
//! precision in their supported ranges; accuracy is asserted against
//! published reference values in the unit tests below.

/// `1 / sqrt(2 * pi)` — the normalising constant of the standard normal PDF.
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// The error function `erf(x) = 2/sqrt(pi) * Int_0^x exp(-t^2) dt`.
///
/// Uses the Maclaurin series for `|x| < 2.5` and the continued-fraction
/// expansion of `erfc` elsewhere; relative error is below `1e-14` across the
/// real line.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 2.5 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Accurate in the far tail (no catastrophic cancellation): for `x >= 2.5`
/// the Lentz continued fraction is evaluated directly.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.5 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series for `erf`, converging quickly for `|x| <~ 3`.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/sqrt(pi) * exp(-x^2) * sum_{n>=0} x^(2n+1) * 2^n / (1*3*...*(2n+1))
    // This alternative form (Abramowitz & Stegun 7.1.6) has all-positive
    // terms, avoiding the cancellation of the alternating series.
    let xx = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= 2.0 * xx / (2.0 * f64::from(n) + 1.0);
        let new = sum + term;
        if new == sum || n > 200 {
            break;
        }
        sum = new;
    }
    // 2/sqrt(pi) = 2 * (1/sqrt(2*pi)) * sqrt(2)
    2.0 * FRAC_1_SQRT_2PI * std::f64::consts::SQRT_2 * (-xx).exp() * sum
}

/// Continued fraction for `erfc`, valid for `x >= ~2` (modified Lentz).
fn erfc_cf(x: f64) -> f64 {
    // erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + 1/2/(x + 2/2/(x + 3/2/(x + ...))))
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-17;
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0;
    let mut i = 1u32;
    loop {
        let a = f64::from(i) / 2.0;
        // continued-fraction step: b = x for odd steps in this expansion
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < EPS || i > 300 {
            break;
        }
        i += 1;
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() / f
}

/// Standard normal probability density `phi(x)`.
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution `Phi(x)`.
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Phi^{-1}(p)` via Wichura's algorithm AS241
/// (`PPND16`), accurate to about 1 part in `1e16` for `p in (0, 1)`.
///
/// Returns `-INFINITY` for `p == 0`, `INFINITY` for `p == 1`, and `NAN`
/// outside `[0, 1]`.
pub fn norm_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 8] = [
        3.387_132_872_796_366_5,
        1.331_416_678_917_843_8e2,
        1.971_590_950_306_551_3e3,
        1.373_169_376_550_946e4,
        4.592_195_393_154_987e4,
        6.726_577_092_700_87e4,
        3.343_057_558_358_813e4,
        2.509_080_928_730_122_7e3,
    ];
    const B: [f64; 8] = [
        1.0,
        4.231_333_070_160_091e1,
        6.871_870_074_920_579e2,
        5.394_196_021_424_751e3,
        2.121_379_430_158_659_7e4,
        3.930_789_580_009_271e4,
        2.872_908_573_572_194_3e4,
        5.226_495_278_852_854e3,
    ];
    const C: [f64; 8] = [
        1.423_437_110_749_683_5,
        4.630_337_846_156_546,
        5.769_497_221_460_691,
        3.647_848_324_763_204_5,
        1.270_458_252_452_368_4,
        2.417_807_251_774_506e-1,
        2.272_384_498_926_918_4e-2,
        7.745_450_142_783_414e-4,
    ];
    const D: [f64; 8] = [
        1.0,
        2.053_191_626_637_759,
        1.676_384_830_183_803_8,
        6.897_673_349_851e-1,
        1.481_039_764_274_800_8e-1,
        1.519_866_656_361_645_7e-2,
        5.475_938_084_995_345e-4,
        1.050_750_071_644_416_9e-9,
    ];
    const E: [f64; 8] = [
        6.657_904_643_501_103,
        5.463_784_911_164_114,
        1.784_826_539_917_291_3,
        2.965_605_718_285_048_7e-1,
        2.653_218_952_657_612_4e-2,
        1.242_660_947_388_078_4e-3,
        2.711_555_568_743_487_6e-5,
        2.010_334_399_292_288_1e-7,
    ];
    const F: [f64; 8] = [
        1.0,
        5.998_322_065_558_88e-1,
        1.369_298_809_227_358e-1,
        1.487_536_129_085_061_5e-2,
        7.868_691_311_456_133e-4,
        1.846_318_317_510_054_8e-5,
        1.421_511_758_316_446e-7,
        2.044_263_103_389_939_7e-15,
    ];

    #[inline]
    fn poly(coef: &[f64; 8], x: f64) -> f64 {
        coef.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    let q = p - 0.5;
    if q.abs() <= 0.425 {
        let r = 0.180_625 - q * q;
        return q * poly(&A, r) / poly(&B, r);
    }
    let r = if q < 0.0 { p } else { 1.0 - p };
    let mut r = (-r.ln()).sqrt();
    let val = if r <= 5.0 {
        r -= 1.6;
        poly(&C, r) / poly(&D, r)
    } else {
        r -= 5.0;
        poly(&E, r) / poly(&F, r)
    };
    if q < 0.0 {
        -val
    } else {
        val
    }
}

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`, using the
/// Lanczos approximation (g = 7, 9 coefficients); absolute error `< 1e-13`.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-13);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-13);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-13);
        close(erf(3.0), 0.999_977_909_503_001_4, 1e-13);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-13);
    }

    #[test]
    fn erfc_tail_is_accurate() {
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-18);
        close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-24);
        close(erfc(-2.0), 1.995_322_265_018_952_7, 1e-12);
    }

    #[test]
    fn erf_erfc_sum_to_one() {
        for &x in &[-4.0, -1.5, -0.2, 0.0, 0.3, 1.1, 2.6, 4.9] {
            close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn norm_cdf_known_values() {
        close(norm_cdf(0.0), 0.5, 1e-15);
        close(norm_cdf(1.0), 0.841_344_746_068_543, 1e-12);
        close(norm_cdf(-1.959_963_984_540_054), 0.025, 1e-12);
        close(norm_cdf(1.644_853_626_951_472_7), 0.95, 1e-12);
    }

    #[test]
    fn norm_quantile_known_values() {
        close(norm_quantile(0.5), 0.0, 1e-15);
        close(norm_quantile(0.975), 1.959_963_984_540_054, 1e-12);
        close(norm_quantile(0.95), 1.644_853_626_951_472_7, 1e-12);
        close(norm_quantile(0.025), -1.959_963_984_540_054, 1e-12);
        close(norm_quantile(1e-10), -6.361_340_902_404_056, 1e-9);
    }

    #[test]
    fn norm_quantile_edge_cases() {
        assert_eq!(norm_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(norm_quantile(1.0), f64::INFINITY);
        assert!(norm_quantile(-0.1).is_nan());
        assert!(norm_quantile(1.1).is_nan());
        assert!(norm_quantile(f64::NAN).is_nan());
    }

    #[test]
    fn quantile_is_inverse_of_cdf() {
        for i in 1..100 {
            let p = f64::from(i) / 100.0;
            close(norm_cdf(norm_quantile(p)), p, 1e-12);
        }
        // Deep tails round-trip too.
        for &p in &[1e-8, 1e-5, 1.0 - 1e-5, 1.0 - 1e-8] {
            close(norm_cdf(norm_quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-13);
        close(ln_gamma(2.0), 0.0, 1e-13);
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
        // ln(0.5 * 1.5 * ... * 9.5 * sqrt(pi))
        close(ln_gamma(10.5), 13.940_625_219_403_763, 1e-10);
    }

    #[test]
    fn norm_pdf_peak_and_symmetry() {
        close(norm_pdf(0.0), FRAC_1_SQRT_2PI, 1e-16);
        close(norm_pdf(1.3), norm_pdf(-1.3), 1e-16);
    }
}
