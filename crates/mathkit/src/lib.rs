//! # mathkit — numerical substrate for the DPCopula workspace
//!
//! Everything numerical that the paper reproduction needs and that thin
//! Rust statistics crates do not reliably provide, implemented from scratch:
//!
//! * [`special`] — error function family, normal CDF/quantile (AS241), `ln Γ`;
//! * [`batch`] — slice-in/slice-out Φ and Φ⁻¹ kernels, bit-identical to
//!   [`special`], backing the fast sampling profile;
//! * [`matrix`] — a small dense row-major matrix type;
//! * [`cholesky`] — Cholesky factorisation of symmetric positive-definite matrices;
//! * [`concord`] — mergeable integer concordance summaries and the
//!   cross-shard correction behind the sharded Kendall-τ fit;
//! * [`eigen`] — cyclic-Jacobi symmetric eigendecomposition;
//! * [`correlation`] — correlation matrices and the Rousseeuw–Molenberghs
//!   positive-definite repair used by Algorithm 5 of the paper;
//! * [`dist`] — sampling and quantiles for the distributions the evaluation
//!   uses (Gaussian, uniform, Zipf, exponential, gamma, Student-t);
//! * [`fft`] — complex FFT (radix-2 + Bluestein) backing the EFPA histogram
//!   algorithm;
//! * [`wavelet`] — Haar wavelet transform backing Privelet;
//! * [`stats`] — descriptive statistics and distances (mean, variance,
//!   Pearson, Kolmogorov–Smirnov).
//!
//! The crate is deliberately free of external numerical dependencies so that
//! every algorithmic claim in the reproduction can be audited in one place.

#![warn(missing_docs)]

pub mod batch;
pub mod cholesky;
pub mod concord;
pub mod correlation;
pub mod dct;
pub mod dist;
pub mod eigen;
pub mod fft;
pub mod hadamard;
pub mod matrix;
pub mod special;
pub mod stats;
pub mod wavelet;

pub use matrix::Matrix;
