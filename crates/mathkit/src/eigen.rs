//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Algorithm 5 step 3 of the paper repairs an indefinite noisy correlation
//! matrix by eigen-decomposing it, clamping negative eigenvalues, and
//! reassembling. Jacobi is exactly right for the small (`m <= ~32`)
//! symmetric matrices that arise there: simple, unconditionally stable, and
//! accurate to machine precision.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `A = V * diag(values) * V^T`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, ordered to match
    /// `values`.
    pub vectors: Matrix,
}

impl Eigen {
    /// Reassembles `V * diag(values) * V^T`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut vd = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                vd[(i, j)] = self.vectors[(i, j)] * self.values[j];
            }
        }
        vd.matmul(&self.vectors.transpose())
    }
}

/// Decomposes a symmetric matrix with the cyclic Jacobi method.
///
/// # Panics
/// Panics if `a` is not square or is visibly asymmetric (tolerance `1e-8`
/// relative to the largest entry).
pub fn eigen_symmetric(a: &Matrix) -> Eigen {
    assert!(a.is_square(), "eigen_symmetric requires a square matrix");
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0_f64, |m, &v| m.max(v.abs()))
        .max(1.0);
    assert!(
        a.is_symmetric(1e-8 * scale),
        "eigen_symmetric requires a symmetric matrix"
    );

    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation J(p,q,theta): M <- J^T M J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue, permuting columns of V.
    let mut idx: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&i, &j| values_raw[j].partial_cmp(&values_raw[i]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| values_raw[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_trivial() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = eigen_symmetric(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigen_symmetric(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -0.5], &[1.0, 3.0, 0.25], &[-0.5, 0.25, 2.0]]);
        let e = eigen_symmetric(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn reconstruction_matches_for_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        let mut x = 0.123_f64;
        for i in 0..n {
            for j in i..n {
                x = (x * 997.0 + 0.371).fract();
                let v = x - 0.5;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = eigen_symmetric(&a);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-10);
        // Trace equals sum of eigenvalues.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn detects_indefinite_eigenvalues() {
        // [[1, 2], [2, 1]] has eigenvalues 3 and -1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let e = eigen_symmetric(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_rows(&[&[1.0, 0.9], &[0.1, 1.0]]);
        let _ = eigen_symmetric(&a);
    }
}
