//! A small dense, row-major `f64` matrix.
//!
//! This is intentionally minimal: the DPCopula pipeline only needs square
//! symmetric matrices of dimension `m` (the attribute count, typically
//! 2–16), matrix-vector/matrix-matrix products, transposes and equality
//! checks. No BLAS, no generics — auditable and allocation-conscious.

use std::fmt;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// True if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Scales every element by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        assert_eq!(a.matvec(&v), vec![-1.0, 8.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 1.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, 1.0]]);
        assert!(!ns.is_symmetric(1e-9));
        assert!(ns.is_symmetric(0.2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }
}
