//! Correlation-matrix utilities, including the eigenvalue-based
//! positive-definite repair (Rousseeuw & Molenberghs 1993) called for by
//! Algorithm 5 step 3 of the DPCopula paper.

use crate::cholesky::is_positive_definite;
use crate::eigen::eigen_symmetric;
use crate::matrix::Matrix;

/// Smallest eigenvalue substituted for non-positive ones during repair.
pub const PD_REPAIR_FLOOR: f64 = 1e-6;

/// Validates that `m` has the shape of a correlation matrix: square,
/// symmetric, unit diagonal, and off-diagonals in `[-1, 1]` (within `tol`).
pub fn is_correlation_shaped(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() || !m.is_symmetric(tol) {
        return false;
    }
    let n = m.rows();
    for i in 0..n {
        if (m[(i, i)] - 1.0).abs() > tol {
            return false;
        }
        for j in 0..n {
            if m[(i, j)].abs() > 1.0 + tol {
                return false;
            }
        }
    }
    true
}

/// Clamps every off-diagonal entry into `[-1, 1]` and forces the diagonal
/// to exactly 1. Useful after adding Laplace noise to coefficients.
pub fn clamp_to_correlation(m: &mut Matrix) {
    let n = m.rows();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                m[(i, j)] = 1.0;
            } else {
                m[(i, j)] = m[(i, j)].clamp(-1.0, 1.0);
            }
        }
    }
}

/// Repairs a symmetric, unit-diagonal matrix that may be indefinite into a
/// positive-definite correlation matrix using the eigenvalue method of
/// Rousseeuw & Molenberghs (1993), exactly as prescribed by Algorithm 5:
///
/// 1. eigendecompose `P~_1 = R D R^T`;
/// 2. replace non-positive eigenvalues in `D` with a small positive value;
/// 3. reassemble and renormalise so the diagonal is 1 again.
///
/// If the input is already positive definite it is returned with only the
/// diagonal normalised. The output always passes a Cholesky factorisation.
pub fn repair_positive_definite(m: &Matrix) -> Matrix {
    assert!(m.is_square(), "correlation matrix must be square");
    if is_positive_definite(m) {
        return m.clone();
    }
    let e = eigen_symmetric(m);
    let n = m.rows();
    let clamped: Vec<f64> = e
        .values
        .iter()
        .map(|&v| {
            if v <= PD_REPAIR_FLOOR {
                PD_REPAIR_FLOOR
            } else {
                v
            }
        })
        .collect();
    // R * diag(clamped) * R^T
    let mut vd = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            vd[(i, j)] = e.vectors[(i, j)] * clamped[j];
        }
    }
    let mut repaired = vd.matmul(&e.vectors.transpose());
    // Renormalise to unit diagonal: P_ij / sqrt(P_ii * P_jj).
    let diag: Vec<f64> = (0..n).map(|i| repaired[(i, i)]).collect();
    for i in 0..n {
        for j in 0..n {
            repaired[(i, j)] /= (diag[i] * diag[j]).sqrt();
        }
    }
    // Normalisation can re-introduce microscopic asymmetry; symmetrise.
    for i in 0..n {
        repaired[(i, i)] = 1.0;
        for j in (i + 1)..n {
            let avg = 0.5 * (repaired[(i, j)] + repaired[(j, i)]);
            repaired[(i, j)] = avg;
            repaired[(j, i)] = avg;
        }
    }
    // The floor guarantees strict positive definiteness after scaling, but
    // guard against pathological rounding with one more nudge if needed.
    if !is_positive_definite(&repaired) {
        let mut nudged = repaired.clone();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    nudged[(i, j)] *= 1.0 - 1e-6;
                }
            }
        }
        return nudged;
    }
    repaired
}

/// Builds a correlation matrix from the strict upper triangle given in
/// row-major pair order `(0,1), (0,2), ..., (0,n-1), (1,2), ...`.
///
/// # Panics
/// Panics if `pairs.len() != n*(n-1)/2`.
pub fn correlation_from_upper_triangle(n: usize, pairs: &[f64]) -> Matrix {
    assert_eq!(
        pairs.len(),
        n * (n - 1) / 2,
        "expected {} pairwise coefficients for n={n}",
        n * (n - 1) / 2
    );
    let mut m = Matrix::identity(n);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            m[(i, j)] = pairs[k];
            m[(j, i)] = pairs[k];
            k += 1;
        }
    }
    m
}

/// Constant-correlation (equicorrelation) matrix, handy for tests and
/// synthetic data generation.
pub fn equicorrelation(n: usize, rho: f64) -> Matrix {
    let mut m = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m[(i, j)] = rho;
            }
        }
    }
    m
}

/// AR(1)-style correlation matrix with `P_ij = rho^|i-j|`.
pub fn ar1_correlation(n: usize, rho: f64) -> Matrix {
    let mut m = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rho.powi((i as i64 - j as i64).unsigned_abs() as i32);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_pd_is_untouched() {
        let m = equicorrelation(3, 0.4);
        let r = repair_positive_definite(&m);
        assert!(r.max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn repairs_indefinite_matrix() {
        // rho = -0.9 equicorrelation in 3D is indefinite
        // (min eigenvalue = 1 + 2*(-0.9)*cos stuff < 0).
        let m = equicorrelation(3, -0.9);
        assert!(!is_positive_definite(&m));
        let r = repair_positive_definite(&m);
        assert!(is_positive_definite(&r));
        assert!(is_correlation_shaped(&r, 1e-9));
    }

    #[test]
    fn repair_preserves_pd_direction() {
        // The repaired matrix should stay close to the original in the
        // entries that were not the problem.
        let m = correlation_from_upper_triangle(3, &[0.95, 0.95, -0.5]);
        assert!(!is_positive_definite(&m));
        let r = repair_positive_definite(&m);
        assert!(is_positive_definite(&r));
        // Strongly positive pairs should stay strongly positive.
        assert!(r[(0, 1)] > 0.5);
        assert!(r[(0, 2)] > 0.5);
    }

    #[test]
    fn clamp_fixes_out_of_range() {
        let mut m = correlation_from_upper_triangle(2, &[1.7]);
        m[(0, 0)] = 0.9;
        clamp_to_correlation(&mut m);
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(0, 0)], 1.0);
        let mut m2 = correlation_from_upper_triangle(2, &[-1.3]);
        clamp_to_correlation(&mut m2);
        assert_eq!(m2[(1, 0)], -1.0);
    }

    #[test]
    fn shape_validation() {
        assert!(is_correlation_shaped(&equicorrelation(4, 0.2), 1e-12));
        assert!(!is_correlation_shaped(&Matrix::zeros(3, 3), 1e-12));
        assert!(!is_correlation_shaped(&Matrix::zeros(2, 3), 1e-12));
    }

    #[test]
    fn ar1_structure() {
        let m = ar1_correlation(4, 0.5);
        assert_eq!(m[(0, 3)], 0.125);
        assert_eq!(m[(2, 1)], 0.5);
        assert!(is_positive_definite(&m));
    }

    #[test]
    fn upper_triangle_ordering() {
        let m = correlation_from_upper_triangle(3, &[0.1, 0.2, 0.3]);
        assert_eq!(m[(0, 1)], 0.1);
        assert_eq!(m[(0, 2)], 0.2);
        assert_eq!(m[(1, 2)], 0.3);
        assert_eq!(m[(2, 1)], 0.3);
    }
}
