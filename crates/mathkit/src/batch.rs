//! Structure-of-arrays batch kernels over contiguous `&[f64]` slices.
//!
//! The fast sampling profile processes whole row-blocks per column, so
//! the hot loops want slice-in/slice-out variants of Φ and Φ⁻¹: one
//! pass per column keeps the working set in cache and lets the
//! optimizer unroll the polynomial evaluation across iterations.
//!
//! These kernels are defined to be **bit-identical** to the scalar
//! [`special::norm_cdf`](crate::special::norm_cdf) and
//! [`special::norm_quantile`](crate::special::norm_quantile) paths —
//! they apply the exact same scalar function per element, so any output
//! produced through a batch kernel is indistinguishable from the scalar
//! pipeline. Property tests in `tests/proptests.rs` pin this contract.

use crate::special::{norm_cdf, norm_quantile};

/// Evaluates the standard normal CDF Φ over `xs`, writing into `out`.
///
/// Bit-identical to calling [`norm_cdf`] per element.
///
/// # Panics
/// Panics when `xs` and `out` differ in length.
pub fn norm_cdf_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "one output slot per input");
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = norm_cdf(x);
    }
}

/// Evaluates the standard normal quantile Φ⁻¹ over `ps`, writing into
/// `out`.
///
/// Bit-identical to calling [`norm_quantile`] per element (including
/// the ±∞ endpoints at `p ∈ {0, 1}` and NaN outside `[0, 1]`).
///
/// # Panics
/// Panics when `ps` and `out` differ in length.
pub fn norm_quantile_slice(ps: &[f64], out: &mut [f64]) {
    assert_eq!(ps.len(), out.len(), "one output slot per input");
    for (o, &p) in out.iter_mut().zip(ps) {
        *o = norm_quantile(p);
    }
}

/// In-place variant of [`norm_cdf_slice`]: maps `xs[i] ← Φ(xs[i])`.
pub fn norm_cdf_in_place(xs: &mut [f64]) {
    for x in xs {
        *x = norm_cdf(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_cdf_matches_scalar_bitwise() {
        let xs: Vec<f64> = (-400..=400).map(|i| i as f64 / 10.0).collect();
        let mut out = vec![0.0; xs.len()];
        norm_cdf_slice(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            assert_eq!(o.to_bits(), norm_cdf(x).to_bits(), "x = {x}");
        }
        let mut in_place = xs.clone();
        norm_cdf_in_place(&mut in_place);
        assert_eq!(in_place, out);
    }

    #[test]
    fn batch_quantile_matches_scalar_bitwise() {
        let mut ps: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
        ps.extend([1e-300, 1e-17, 1.0 - 1e-16]);
        let mut out = vec![0.0; ps.len()];
        norm_quantile_slice(&ps, &mut out);
        for (&p, &o) in ps.iter().zip(&out) {
            assert_eq!(o.to_bits(), norm_quantile(p).to_bits(), "p = {p}");
        }
        assert_eq!(out[0], f64::NEG_INFINITY);
        assert_eq!(out[1000], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "one output slot per input")]
    fn mismatched_lengths_panic() {
        let mut out = [0.0; 2];
        norm_cdf_slice(&[0.0; 3], &mut out);
    }
}
