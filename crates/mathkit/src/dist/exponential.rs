//! Exponential distribution (rate parameterisation).

use super::Continuous;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates `Exp(rate)`. Returns `None` for non-positive or non-finite
    /// rates.
    pub fn new(rate: f64) -> Option<Self> {
        (rate > 0.0 && rate.is_finite()).then_some(Self { rate })
    }

    /// The rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Continuous for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        -(-p).ln_1p() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-3.0).is_none());
        assert!(Exponential::new(f64::NAN).is_none());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let e = Exponential::new(1.5).unwrap();
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn median_is_ln2_over_rate() {
        let e = Exponential::new(2.0).unwrap();
        assert!((e.quantile(0.5) - std::f64::consts::LN_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_support_is_zero() {
        let e = Exponential::new(1.0).unwrap();
        assert_eq!(e.pdf(-1.0), 0.0);
        assert_eq!(e.cdf(-1.0), 0.0);
    }
}
