//! Gamma distribution (shape/scale parameterisation) and the regularised
//! lower incomplete gamma function backing its CDF.

use super::{quantile_by_bisection, Continuous};
use crate::special::ln_gamma;
use rngkit::Rng;

/// Gamma distribution with shape `k` and scale `theta` (mean `k * theta`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates `Gamma(shape, scale)`. Returns `None` for non-positive or
    /// non-finite parameters.
    pub fn new(shape: f64, scale: f64) -> Option<Self> {
        (shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite())
            .then_some(Self { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `theta`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Continuous for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let t = self.scale;
        ((k - 1.0) * (x / t).ln() - x / t - ln_gamma(k)).exp() / t
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        if p == 0.0 {
            return 0.0;
        }
        // Bracket generously: mean + 40 standard deviations covers any
        // p < 1 - 1e-300 for the shapes used in practice.
        let hi = self.shape * self.scale
            + 40.0 * (self.shape.max(1.0)).sqrt() * self.scale
            + 40.0 * self.scale;
        quantile_by_bisection(|x| self.cdf(x), p, 0.0, hi)
    }

    /// Marsaglia–Tsang squeeze method; for `shape < 1` the boosting trick
    /// `Gamma(a) = Gamma(a+1) * U^{1/a}` is applied.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let a = self.shape;
        if a < 1.0 {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let boosted = Gamma {
                shape: a + 1.0,
                scale: 1.0,
            };
            return boosted.sample(rng) * u.powf(1.0 / a) * self.scale;
        }
        let d = a - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = super::gaussian::standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }
}

/// Regularised lower incomplete gamma `P(a, x) = gamma(a, x) / Gamma(a)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = x^a e^-x / Gamma(a) * sum x^n / (a (a+1) ... (a+n))
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x); P = 1 - Q.
        const TINY: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / TINY;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -f64::from(i) * (f64::from(i) - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < TINY {
                d = TINY;
            }
            c = b + an / c;
            if c.abs() < TINY {
                c = TINY;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_none());
        assert!(Gamma::new(1.0, -1.0).is_none());
        assert!(Gamma::new(f64::NAN, 1.0).is_none());
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^-x (exponential CDF).
        for &x in &[0.1, 1.0, 3.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // P(0.5, x) = erf(sqrt(x)).
        assert!((gamma_p(0.5, 1.0) - crate::special::erf(1.0)).abs() < 1e-12);
        assert!((gamma_p(0.5, 4.0) - crate::special::erf(2.0)).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let g = Gamma::new(2.5, 1.3).unwrap();
        for &p in &[0.01, 0.3, 0.5, 0.8, 0.99] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn sampling_matches_mean_and_variance() {
        let g = Gamma::new(3.0, 2.0).unwrap(); // mean 6, var 12
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 12.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn sampling_small_shape() {
        let g = Gamma::new(0.5, 1.0).unwrap(); // mean 0.5
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pdf_matches_cdf_derivative() {
        let g = Gamma::new(4.0, 0.7).unwrap();
        let x = 2.2;
        let dx = 1e-5;
        let num = (g.cdf(x + dx) - g.cdf(x - dx)) / (2.0 * dx);
        assert!((num - g.pdf(x)).abs() < 1e-6);
    }
}
