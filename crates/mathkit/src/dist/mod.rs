//! Distribution library: sampling, densities, CDFs and quantiles for every
//! distribution the DPCopula evaluation touches.
//!
//! * [`Gaussian`] — margins in Figs 9–10 and the copula itself;
//! * [`Uniform`] — margins in Fig 9, and Fig 3(c);
//! * [`Zipf`] — the skewed margins of Fig 9;
//! * [`Exponential`], [`Gamma`] — the margins of Fig 3(a)/(b);
//! * [`StudentT`] — the margin of Fig 3(c)/(d);
//! * [`MultivariateNormal`] — the `N(0, P)` sampler at the heart of
//!   Algorithm 3.
//!
//! Continuous distributions implement [`Continuous`], which gives every one
//! of them inverse-transform sampling for free; several override `sample`
//! with a faster dedicated method (polar Box–Muller for the Gaussian,
//! Marsaglia–Tsang for the Gamma).

mod exponential;
mod gamma;
mod gaussian;
mod mvn;
mod student_t;
mod uniform;
mod zipf;

pub use exponential::Exponential;
pub use gamma::Gamma;
pub use gaussian::{standard_normal, Gaussian};
pub use mvn::MultivariateNormal;
pub use student_t::StudentT;
pub use uniform::Uniform;
pub use zipf::Zipf;

use rngkit::Rng;

/// A univariate continuous distribution.
pub trait Continuous {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;
    /// Quantile (inverse CDF) at `p in [0, 1]`.
    fn quantile(&self, p: f64) -> f64;
    /// Draws one sample. The default uses inverse-transform sampling.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() is in [0, 1); nudge away from the closed endpoints
        // so quantile never sees exactly 0 or 1.
        let u: f64 = rng
            .gen::<f64>()
            .clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        self.quantile(u)
    }
}

/// Generic numeric quantile via bisection on a monotone CDF; used by
/// distributions without a closed-form inverse. `lo`/`hi` must bracket the
/// quantile.
pub(crate) fn quantile_by_bisection(
    cdf: impl Fn(f64) -> f64,
    p: f64,
    mut lo: f64,
    mut hi: f64,
) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo).abs() <= 1e-12 * (1.0 + mid.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn default_sampling_respects_distribution_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Exponential::new(2.0).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / f64::from(n);
        // Mean of Exp(rate=2) is 0.5.
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn bisection_quantile_recovers_known_inverse() {
        let q = quantile_by_bisection(|x| x, 0.3, 0.0, 1.0);
        assert!((q - 0.3).abs() < 1e-10);
    }
}
