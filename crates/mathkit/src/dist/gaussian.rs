//! Univariate Gaussian distribution.

use super::Continuous;
use crate::special::{norm_cdf, norm_quantile, FRAC_1_SQRT_2PI};
use rngkit::Rng;

/// Normal distribution `N(mean, sd^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    sd: f64,
}

impl Gaussian {
    /// Creates `N(mean, sd^2)`. Returns `None` when `sd <= 0` or either
    /// parameter is non-finite.
    pub fn new(mean: f64, sd: f64) -> Option<Self> {
        (sd > 0.0 && mean.is_finite() && sd.is_finite()).then_some(Self { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Continuous for Gaussian {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        FRAC_1_SQRT_2PI / self.sd * (-0.5 * z * z).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mean) / self.sd)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * norm_quantile(p)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * standard_normal(rng)
    }
}

/// Draws one standard normal variate with the Marsaglia polar method.
///
/// This is the workhorse behind both univariate Gaussian sampling and the
/// multivariate `N(0, P)` sampler of Algorithm 3.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gaussian::new(0.0, 0.0).is_none());
        assert!(Gaussian::new(0.0, -1.0).is_none());
        assert!(Gaussian::new(f64::NAN, 1.0).is_none());
        assert!(Gaussian::new(0.0, f64::INFINITY).is_none());
        assert!(Gaussian::new(3.0, 2.0).is_some());
    }

    #[test]
    fn pdf_cdf_quantile_consistency() {
        let g = Gaussian::new(10.0, 3.0).unwrap();
        assert!((g.cdf(10.0) - 0.5).abs() < 1e-12);
        assert!((g.quantile(0.5) - 10.0).abs() < 1e-12);
        for &p in &[0.01, 0.2, 0.5, 0.77, 0.99] {
            assert!((g.cdf(g.quantile(p)) - p).abs() < 1e-10);
        }
        // pdf integrates (roughly) to the cdf increment.
        let dx = 1e-5;
        let x = 11.3;
        let approx = (g.cdf(x + dx) - g.cdf(x - dx)) / (2.0 * dx);
        assert!((approx - g.pdf(x)).abs() < 1e-6);
    }

    #[test]
    fn sample_moments() {
        let g = Gaussian::new(-2.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((mean + 2.0).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }
}
