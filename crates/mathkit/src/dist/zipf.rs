//! Zipf (zeta) distribution over a finite domain `{0, 1, ..., n-1}`.
//!
//! Fig 9 of the paper evaluates DPCopula on data whose margins follow a
//! Zipf distribution over the attribute domain; the skew exponent controls
//! how heavy the head is. The implementation precomputes the CDF table
//! (domains are at most a few thousand bins in the evaluation) so sampling
//! and quantiles are exact.

use rngkit::Rng;

/// Zipf distribution on `{0, ..., n-1}` with `P(k) ~ 1 / (k+1)^s`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    exponent: f64,
    /// Cumulative probabilities; `cdf[k] = P(X <= k)`, `cdf[n-1] == 1`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` values with skew exponent `s`.
    /// Returns `None` when `n == 0`, or `s` is negative or non-finite.
    /// `s = 0` degenerates to the discrete uniform.
    pub fn new(n: usize, exponent: f64) -> Option<Self> {
        if n == 0 || !exponent.is_finite() || exponent < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Some(Self { exponent, cdf })
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Skew exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// `P(X <= k)`.
    pub fn cdf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            1.0
        } else {
            self.cdf[k]
        }
    }

    /// Smallest `k` with `P(X <= k) >= p` (the discrete quantile).
    pub fn quantile(&self, p: f64) -> usize {
        let p = p.clamp(0.0, 1.0);
        // partition_point: first index where cdf[k] >= p.
        self.cdf.partition_point(|&c| c < p).min(self.cdf.len() - 1)
    }

    /// Draws one value by inverse-transform over the CDF table.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.quantile(rng.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, -0.5).is_none());
        assert!(Zipf::new(10, f64::NAN).is_none());
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_is_decreasing_and_normalised() {
        let z = Zipf::new(100, 1.1).unwrap();
        let mut total = 0.0;
        for k in 0..100 {
            total += z.pmf(k);
            if k > 0 {
                assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
            }
        }
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.cdf(99), 1.0);
        assert_eq!(z.cdf(1000), 1.0);
    }

    #[test]
    fn quantile_matches_cdf() {
        let z = Zipf::new(50, 1.0).unwrap();
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.999, 1.0] {
            let k = z.quantile(p);
            assert!(z.cdf(k) >= p - 1e-12);
            if k > 0 {
                assert!(z.cdf(k - 1) < p + 1e-12);
            }
        }
    }

    #[test]
    fn sampling_hits_the_head_heavily() {
        let z = Zipf::new(1000, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let zeros = (0..n).filter(|_| z.sample(&mut rng) == 0).count();
        let frac = zeros as f64 / f64::from(n);
        // P(0) for s=1.5 over 1000 values is ~ 1/zeta(1.5) ~= 0.385.
        assert!(
            (frac - z.pmf(0)).abs() < 0.02,
            "frac {frac} vs {}",
            z.pmf(0)
        );
    }
}
