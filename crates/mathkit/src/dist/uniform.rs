//! Continuous uniform distribution on `[a, b)`.

use super::Continuous;

/// Uniform distribution on the half-open interval `[a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates `U[a, b)`. Returns `None` if `a >= b` or either bound is
    /// non-finite.
    pub fn new(a: f64, b: f64) -> Option<Self> {
        (a < b && a.is_finite() && b.is_finite()).then_some(Self { a, b })
    }

    /// The unit uniform `U[0, 1)`.
    pub fn unit() -> Self {
        Self { a: 0.0, b: 1.0 }
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.a
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.b
    }
}

impl Continuous for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x < self.b {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.a + p.clamp(0.0, 1.0) * (self.b - self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_interval() {
        assert!(Uniform::new(1.0, 1.0).is_none());
        assert!(Uniform::new(2.0, 1.0).is_none());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_none());
    }

    #[test]
    fn cdf_and_quantile_are_linear() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.cdf(2.0), 0.0);
        assert_eq!(u.cdf(4.0), 0.5);
        assert_eq!(u.cdf(6.0), 1.0);
        assert_eq!(u.cdf(100.0), 1.0);
        assert_eq!(u.quantile(0.25), 3.0);
    }

    #[test]
    fn pdf_is_flat_inside_zero_outside() {
        let u = Uniform::unit();
        assert_eq!(u.pdf(0.5), 1.0);
        assert_eq!(u.pdf(-0.1), 0.0);
        assert_eq!(u.pdf(1.0), 0.0);
    }
}
