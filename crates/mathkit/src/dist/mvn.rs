//! Multivariate normal sampler `N(0, P)` via Cholesky factorisation —
//! step 1a of Algorithm 3 in the paper.

use super::gaussian::standard_normal;
use crate::cholesky::{cholesky, CholeskyError};
use crate::matrix::Matrix;
use rngkit::Rng;

/// A zero-mean multivariate normal with correlation (or covariance)
/// matrix `P`, sampled as `x = L g` where `P = L L^T`.
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    chol: Matrix,
}

impl MultivariateNormal {
    /// Builds the sampler; fails when `p` is not symmetric positive
    /// definite.
    pub fn new(p: &Matrix) -> Result<Self, CholeskyError> {
        Ok(Self { chol: cholesky(p)? })
    }

    /// Dimension of the sampled vectors.
    pub fn dim(&self) -> usize {
        self.chol.rows()
    }

    /// Draws one vector into `out`.
    ///
    /// # Panics
    /// Panics when `out.len() != self.dim()`.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        let d = self.dim();
        assert_eq!(out.len(), d, "output buffer size mismatch");
        // Work in-place: draw g into out, then apply L from the bottom up
        // so each output row only reads not-yet-overwritten entries.
        for v in out.iter_mut() {
            *v = standard_normal(rng);
        }
        for i in (0..d).rev() {
            let mut acc = 0.0;
            for (k, &v) in out.iter().enumerate().take(i + 1) {
                acc += self.chol[(i, k)] * v;
            }
            out[i] = acc;
        }
    }

    /// Draws one vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draws `n` vectors as rows of an `n x d` matrix stored column-major
    /// per attribute (a `Vec` of `d` columns of length `n`), matching the
    /// columnar layout used across the workspace.
    pub fn sample_columns<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        let d = self.dim();
        let mut cols = vec![vec![0.0; n]; d];
        let mut buf = vec![0.0; d];
        for row in 0..n {
            self.sample_into(rng, &mut buf);
            for (j, col) in cols.iter_mut().enumerate() {
                col[row] = buf[j];
            }
        }
        cols
    }

    /// The lower-triangular Cholesky factor `L` with `P = L L^T`.
    pub fn cholesky_factor(&self) -> &Matrix {
        &self.chol
    }

    /// Applies `L` in place to a structure-of-arrays batch of vectors:
    /// column `j` holds component `j` of every vector, and each row
    /// (one slot across all columns) is replaced by `L·z` for that row's
    /// `z`. Rows are processed in cache-sized blocks so the `d²/2`
    /// factor entries are re-read once per ~[`Self::APPLY_BLOCK`] rows
    /// instead of once per row.
    ///
    /// The per-row arithmetic — which products are formed and the order
    /// they are summed — is independent of the row count and of the
    /// blocking, so the result for any given row depends only on that
    /// row's input.
    ///
    /// # Panics
    /// Panics when `cols.len() != self.dim()` or the columns have
    /// unequal lengths.
    pub fn apply_lower_blocked(&self, cols: &mut [Vec<f64>]) {
        let d = self.dim();
        assert_eq!(cols.len(), d, "one column per dimension");
        let n = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == n),
            "columns must have equal lengths"
        );
        let mut start = 0;
        while start < n {
            let end = (start + Self::APPLY_BLOCK).min(n);
            // Bottom-up over output components so component i only reads
            // inputs k <= i that have not been overwritten yet.
            for i in (0..d).rev() {
                let (head, tail) = cols.split_at_mut(i);
                let ci = &mut tail[0][start..end];
                let lii = self.chol[(i, i)];
                for v in ci.iter_mut() {
                    *v *= lii;
                }
                for (k, ck) in head.iter().enumerate() {
                    let lik = self.chol[(i, k)];
                    if lik != 0.0 {
                        for (v, &z) in ci.iter_mut().zip(&ck[start..end]) {
                            *v += lik * z;
                        }
                    }
                }
            }
            start = end;
        }
    }
}

impl MultivariateNormal {
    /// Row-block size for [`Self::apply_lower_blocked`]: 2048 rows × 8
    /// bytes = 16 KiB per column, keeping a handful of columns resident
    /// in L1/L2 while the factor is streamed over them.
    pub const APPLY_BLOCK: usize = 2048;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::equicorrelation;
    use crate::stats::pearson;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn rejects_indefinite_matrix() {
        let p = equicorrelation(3, -0.9);
        assert!(MultivariateNormal::new(&p).is_err());
    }

    #[test]
    fn samples_have_requested_correlation() {
        let p = equicorrelation(2, 0.7);
        let mvn = MultivariateNormal::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cols = mvn.sample_columns(&mut rng, 40_000);
        let r = pearson(&cols[0], &cols[1]);
        assert!((r - 0.7).abs() < 0.02, "sample correlation {r}");
        // Margins are standard normal.
        let mean = cols[0].iter().sum::<f64>() / cols[0].len() as f64;
        let var =
            cols[0].iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (cols[0].len() - 1) as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }

    #[test]
    fn independent_when_identity() {
        let p = Matrix::identity(3);
        let mvn = MultivariateNormal::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let cols = mvn.sample_columns(&mut rng, 30_000);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let r = pearson(&cols[i], &cols[j]);
                assert!(r.abs() < 0.03, "r[{i}{j}] = {r}");
            }
        }
    }

    #[test]
    fn blocked_apply_matches_per_row_product() {
        use rngkit::Rng as _;
        let p = equicorrelation(4, 0.45);
        let mvn = MultivariateNormal::new(&p).unwrap();
        let d = mvn.dim();
        // Cover multiple blocks plus a ragged tail.
        let n = MultivariateNormal::APPLY_BLOCK * 2 + 37;
        let mut rng = StdRng::seed_from_u64(17);
        let z: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect())
            .collect();
        let mut cols = z.clone();
        mvn.apply_lower_blocked(&mut cols);
        let l = mvn.cholesky_factor();
        for row in [0, 1, 2047, 2048, 4095, 4096, n - 1] {
            for i in 0..d {
                let want: f64 = (0..=i).map(|k| l[(i, k)] * z[k][row]).sum();
                let got = cols[i][row];
                assert!(
                    (got - want).abs() < 1e-12,
                    "row {row} comp {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn blocked_apply_handles_empty_columns() {
        let mvn = MultivariateNormal::new(&Matrix::identity(3)).unwrap();
        let mut cols = vec![Vec::new(); 3];
        mvn.apply_lower_blocked(&mut cols);
        assert!(cols.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "one column per dimension")]
    fn blocked_apply_checks_column_count() {
        let mvn = MultivariateNormal::new(&Matrix::identity(2)).unwrap();
        let mut cols = vec![vec![0.0; 4]; 3];
        mvn.apply_lower_blocked(&mut cols);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn sample_into_checks_buffer() {
        let mvn = MultivariateNormal::new(&Matrix::identity(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut buf = vec![0.0; 3];
        mvn.sample_into(&mut rng, &mut buf);
    }
}
