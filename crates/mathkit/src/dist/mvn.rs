//! Multivariate normal sampler `N(0, P)` via Cholesky factorisation —
//! step 1a of Algorithm 3 in the paper.

use super::gaussian::standard_normal;
use crate::cholesky::{cholesky, CholeskyError};
use crate::matrix::Matrix;
use rngkit::Rng;

/// A zero-mean multivariate normal with correlation (or covariance)
/// matrix `P`, sampled as `x = L g` where `P = L L^T`.
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    chol: Matrix,
}

impl MultivariateNormal {
    /// Builds the sampler; fails when `p` is not symmetric positive
    /// definite.
    pub fn new(p: &Matrix) -> Result<Self, CholeskyError> {
        Ok(Self { chol: cholesky(p)? })
    }

    /// Dimension of the sampled vectors.
    pub fn dim(&self) -> usize {
        self.chol.rows()
    }

    /// Draws one vector into `out`.
    ///
    /// # Panics
    /// Panics when `out.len() != self.dim()`.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        let d = self.dim();
        assert_eq!(out.len(), d, "output buffer size mismatch");
        // Work in-place: draw g into out, then apply L from the bottom up
        // so each output row only reads not-yet-overwritten entries.
        for v in out.iter_mut() {
            *v = standard_normal(rng);
        }
        for i in (0..d).rev() {
            let mut acc = 0.0;
            for (k, &v) in out.iter().enumerate().take(i + 1) {
                acc += self.chol[(i, k)] * v;
            }
            out[i] = acc;
        }
    }

    /// Draws one vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draws `n` vectors as rows of an `n x d` matrix stored column-major
    /// per attribute (a `Vec` of `d` columns of length `n`), matching the
    /// columnar layout used across the workspace.
    pub fn sample_columns<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        let d = self.dim();
        let mut cols = vec![vec![0.0; n]; d];
        let mut buf = vec![0.0; d];
        for row in 0..n {
            self.sample_into(rng, &mut buf);
            for (j, col) in cols.iter_mut().enumerate() {
                col[row] = buf[j];
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::equicorrelation;
    use crate::stats::pearson;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn rejects_indefinite_matrix() {
        let p = equicorrelation(3, -0.9);
        assert!(MultivariateNormal::new(&p).is_err());
    }

    #[test]
    fn samples_have_requested_correlation() {
        let p = equicorrelation(2, 0.7);
        let mvn = MultivariateNormal::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cols = mvn.sample_columns(&mut rng, 40_000);
        let r = pearson(&cols[0], &cols[1]);
        assert!((r - 0.7).abs() < 0.02, "sample correlation {r}");
        // Margins are standard normal.
        let mean = cols[0].iter().sum::<f64>() / cols[0].len() as f64;
        let var =
            cols[0].iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (cols[0].len() - 1) as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }

    #[test]
    fn independent_when_identity() {
        let p = Matrix::identity(3);
        let mvn = MultivariateNormal::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let cols = mvn.sample_columns(&mut rng, 30_000);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let r = pearson(&cols[i], &cols[j]);
                assert!(r.abs() < 0.03, "r[{i}{j}] = {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn sample_into_checks_buffer() {
        let mvn = MultivariateNormal::new(&Matrix::identity(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut buf = vec![0.0; 3];
        mvn.sample_into(&mut rng, &mut buf);
    }
}
