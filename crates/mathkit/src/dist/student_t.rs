//! Student's t distribution and the regularised incomplete beta function
//! backing its CDF.

use super::{gamma::Gamma, gaussian::standard_normal, Continuous};
use crate::special::ln_gamma;
use rngkit::Rng;

/// Student's t distribution with `nu` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates a t distribution. Returns `None` for non-positive or
    /// non-finite degrees of freedom.
    pub fn new(df: f64) -> Option<Self> {
        (df > 0.0 && df.is_finite()).then_some(Self { df })
    }

    /// Degrees of freedom `nu`.
    pub fn df(&self) -> f64 {
        self.df
    }
}

impl Continuous for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln_c =
            ln_gamma((v + 1.0) / 2.0) - ln_gamma(v / 2.0) - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_c - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        let v = self.df;
        if x == 0.0 {
            return 0.5;
        }
        let ib = incomplete_beta(v / 2.0, 0.5, v / (v + x * x));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        if p == 0.5 {
            return 0.0;
        }
        // Solve on the survival function in the upper tail, by symmetry.
        // Targeting the tail mass `q` directly — rather than bisecting
        // `cdf(x) = p` — keeps full relative precision for extreme p: the
        // CDF saturates to 1 (so p = 1 - 1e-12 is indistinguishable from
        // nearby values), while sf(x) = 0.5 * I_{v/(v+x^2)}(v/2, 1/2)
        // stays well-scaled however deep the tail. For p >= 0.5 the
        // subtraction 1 - p is exact (Sterbenz lemma: p and 1 are within
        // a factor of two), so no target precision is lost either.
        let (q, sign) = if p < 0.5 { (p, -1.0) } else { (1.0 - p, 1.0) };
        let v = self.df;
        let sf = |x: f64| 0.5 * incomplete_beta(v / 2.0, 0.5, v / (v + x * x));
        // sf decreases from 0.5 at x = 0; expand until it drops below q.
        // (At huge x, x*x overflows to +inf, sf gives exactly 0, and the
        // expansion stops — heavy tails like df = 1 at q = 1e-12 sit near
        // 3e11 and are bracketed long before that.)
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        while sf(hi) > q && hi < 1e300 {
            lo = hi;
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            if sf(mid) > q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        sign * 0.5 * (lo + hi)
    }

    /// Samples as `Z / sqrt(V / nu)` with `V ~ chi^2(nu) = Gamma(nu/2, 2)`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        let chi2 = Gamma::new(self.df / 2.0, 2.0)
            .expect("df validated at construction")
            .sample(rng);
        z / (chi2 / self.df).sqrt()
    }
}

/// Regularised incomplete beta function `I_x(a, b)` (Numerical Recipes
/// `betai` with the modified-Lentz `betacf` continued fraction).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "incomplete_beta requires x in [0,1]"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-16;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = f64::from(m);
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn rejects_bad_df() {
        assert!(StudentT::new(0.0).is_none());
        assert!(StudentT::new(-2.0).is_none());
        assert!(StudentT::new(f64::INFINITY).is_none());
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // I_x(1, b) = 1 - (1-x)^b.
        assert!((incomplete_beta(1.0, 3.0, 0.25) - (1.0 - 0.75_f64.powi(3))).abs() < 1e-12);
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = incomplete_beta(2.3, 1.7, 0.4);
        let w = 1.0 - incomplete_beta(1.7, 2.3, 0.6);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_known_values() {
        let t1 = StudentT::new(1.0).unwrap(); // Cauchy
                                              // Cauchy CDF: 1/2 + atan(x)/pi.
        for &x in &[-2.0_f64, -0.5, 0.0, 1.0, 3.0] {
            let expect = 0.5 + x.atan() / std::f64::consts::PI;
            assert!((t1.cdf(x) - expect).abs() < 1e-10, "x={x}");
        }
        // t(inf-ish) approaches the normal.
        let t_big = StudentT::new(1e6).unwrap();
        assert!((t_big.cdf(1.0) - crate::special::norm_cdf(1.0)).abs() < 1e-5);
    }

    #[test]
    fn quantile_round_trip_and_symmetry() {
        let t = StudentT::new(5.0).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.8, 0.99] {
            assert!((t.cdf(t.quantile(p)) - p).abs() < 1e-9);
        }
        assert!((t.quantile(0.25) + t.quantile(0.75)).abs() < 1e-9);
        // Known value: t_{0.975, 5} = 2.5706.
        assert!((t.quantile(0.975) - 2.570_581_835_6).abs() < 1e-4);
    }

    #[test]
    fn samples_have_heavy_tails_but_centered() {
        let t = StudentT::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| t.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var of t(4) is 4/(4-2) = 2.
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((var - 2.0).abs() < 0.3, "var {var}");
    }
}
