//! Fast Walsh–Hadamard transform (WHT) over `{0,1}^d` — the Fourier basis
//! of the Boolean cube used by Barak et al.'s contingency-table mechanism
//! (PODS 2007, reference \[2\] of the DPCopula paper).
//!
//! Convention: the *orthonormal* involutive transform
//! `F[a] = 2^{-d/2} * sum_x (-1)^{<a,x>} f[x]`, so applying it twice is
//! the identity and L2 norms are preserved (which is what makes the
//! sensitivity accounting of Fourier-domain noise clean).

/// In-place fast Walsh–Hadamard transform, orthonormal scaling.
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fwht(data: &mut [f64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT needs a power-of-two length");
    let mut h = 1;
    while h < n {
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let x = data[j];
                let y = data[j + h];
                data[j] = x + y;
                data[j + h] = x - y;
            }
            i += 2 * h;
        }
        h *= 2;
    }
    let scale = 1.0 / (n as f64).sqrt();
    for v in data {
        *v *= scale;
    }
}

/// The inverse transform (identical to the forward one: the orthonormal
/// WHT is an involution).
pub fn ifwht(data: &mut [f64]) {
    fwht(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let orig = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut data = orig;
        fwht(&mut data);
        ifwht(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn preserves_energy() {
        let mut data = [1.0, -2.0, 3.0, 0.5];
        let before: f64 = data.iter().map(|v| v * v).sum();
        fwht(&mut data);
        let after: f64 = data.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_definition() {
        let f = [2.0, 7.0, 1.0, 8.0];
        let mut got = f;
        fwht(&mut got);
        let n = 4;
        #[allow(clippy::needless_range_loop)] // a is also the Fourier index
        for a in 0..n {
            let mut acc = 0.0;
            for (x, &v) in f.iter().enumerate() {
                let dot = (a & x).count_ones();
                let sign = if dot % 2 == 0 { 1.0 } else { -1.0 };
                acc += sign * v;
            }
            let want = acc / (n as f64).sqrt();
            assert!((got[a] - want).abs() < 1e-12, "a={a}");
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_total() {
        let mut data = [5.0; 16];
        fwht(&mut data);
        assert!((data[0] - 5.0 * 4.0).abs() < 1e-12); // total / sqrt(16)
        assert!(data[1..].iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let mut data = [1.0, 2.0, 3.0];
        fwht(&mut data);
    }
}
