//! Complex FFT: iterative radix-2 Cooley–Tukey plus Bluestein's chirp-z
//! algorithm for arbitrary lengths.
//!
//! The EFPA histogram algorithm (used by DPCopula for its DP margins)
//! perturbs the leading Fourier coefficients of a count histogram; attribute
//! domains in the paper (e.g. 586, 1020) are not powers of two, so Bluestein
//! is required for exact-length transforms.

/// A complex number; minimal, since we cannot take `num-complex`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im*i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline]
    pub const fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// `e^{i*theta}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

/// Forward DFT: `X[k] = sum_j x[j] e^{-2 pi i jk / n}` for any length.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = x.to_vec();
        fft_radix2(&mut buf, false);
        buf
    } else {
        bluestein(x, false)
    }
}

/// Inverse DFT, normalised by `1/n`, for any length.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = if n.is_power_of_two() {
        let mut buf = x.to_vec();
        fft_radix2(&mut buf, true);
        buf
    } else {
        bluestein(x, true)
    };
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v = *v * scale;
    }
    out
}

/// Forward DFT of a real signal (convenience for histogram counts).
pub fn fft_real(x: &[f64]) -> Vec<Complex> {
    let cx: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft(&cx)
}

/// Inverse DFT returning only the real parts (the imaginary residue of a
/// round-trip is floating-point noise).
pub fn ifft_real(x: &[Complex]) -> Vec<f64> {
    ifft(x).into_iter().map(|c| c.re).collect()
}

/// In-place iterative radix-2 Cooley–Tukey.
///
/// # Panics
/// Panics when the length is not a power of two.
fn fft_radix2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "radix-2 FFT needs power-of-two length");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: express an arbitrary-length DFT as a convolution,
/// evaluated with a padded radix-2 FFT.
fn bluestein(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[j] = e^{sign * i * pi * j^2 / n}
    let chirp: Vec<Complex> = (0..n)
        .map(|j| {
            // j^2 mod 2n avoids precision loss for large j.
            let jj = (j * j) % (2 * n);
            Complex::cis(sign * std::f64::consts::PI * jj as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::zero(); m];
    let mut b = vec![Complex::zero(); m];
    for j in 0..n {
        a[j] = x[j] * chirp[j];
        b[j] = chirp[j].conj();
    }
    for j in 1..n {
        b[m - j] = chirp[j].conj();
    }
    fft_radix2(&mut a, false);
    fft_radix2(&mut b, false);
    for j in 0..m {
        a[j] = a[j] * b[j];
    }
    fft_radix2(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|j| a[j] * scale * chirp[j]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    /// Naive O(n^2) DFT used as the test oracle.
    fn dft_naive(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::zero();
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    acc = acc + v * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 + 1.0, (i as f64 * 0.3).sin()))
            .collect()
    }

    #[test]
    fn radix2_matches_naive() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = ramp(n);
            let got = fft(&x);
            let want = dft_naive(&x);
            for (g, w) in got.iter().zip(&want) {
                close(g.re, w.re, 1e-9 * n as f64);
                close(g.im, w.im, 1e-9 * n as f64);
            }
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for &n in &[3usize, 5, 7, 12, 100, 586] {
            let x = ramp(n);
            let got = fft(&x);
            let want = dft_naive(&x);
            for (g, w) in got.iter().zip(&want) {
                close(g.re, w.re, 1e-7 * n as f64);
                close(g.im, w.im, 1e-7 * n as f64);
            }
        }
    }

    #[test]
    fn round_trip_any_length() {
        for &n in &[1usize, 2, 3, 8, 17, 100, 1020] {
            let x = ramp(n);
            let back = ifft(&fft(&x));
            for (b, orig) in back.iter().zip(&x) {
                close(b.re, orig.re, 1e-8 * n as f64);
                close(b.im, orig.im, 1e-8 * n as f64);
            }
        }
    }

    #[test]
    fn dc_component_is_sum() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0];
        let f = fft_real(&x);
        close(f[0].re, 14.0, 1e-12);
        close(f[0].im, 0.0, 1e-12);
    }

    #[test]
    fn parseval_holds() {
        let x = ramp(37);
        let f = fft(&x);
        let tx: f64 = x.iter().map(|c| c.abs() * c.abs()).sum();
        let tf: f64 = f.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / 37.0;
        close(tf, tx, 1e-8 * tx);
    }

    #[test]
    fn empty_input() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }
}
