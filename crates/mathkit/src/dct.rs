//! Orthonormal DCT-II / DCT-III (the inverse pair) used by the DCT
//! flavour of EFPA.
//!
//! The DFT of a histogram implicitly treats it as periodic; a margin that
//! is high on the left and empty on the right has a jump at the wrap
//! boundary, so its Fourier coefficients decay slowly and truncation
//! biases every range query. The DCT's implicit even extension removes
//! that jump — smooth margins compress into a handful of coefficients.
//! Orthonormality keeps the L2 sensitivity of the coefficient vector
//! equal to the histogram's (1), so the EFPA privacy argument carries
//! over unchanged.
//!
//! Implementation: direct `O(n^2)` evaluation. Margins in this workspace
//! have at most a few thousand bins, for which the direct form is both
//! fast enough and trivially correct.

/// Orthonormal DCT-II: `X[k] = s(k) * sum_j x[j] cos(pi (j + 1/2) k / n)`
/// with `s(0) = sqrt(1/n)` and `s(k) = sqrt(2/n)` otherwise.
pub fn dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    (0..n)
        .map(|k| {
            let scale = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            let kf = k as f64;
            scale
                * x.iter()
                    .enumerate()
                    .map(|(j, &v)| v * (std::f64::consts::PI * (j as f64 + 0.5) * kf / nf).cos())
                    .sum::<f64>()
        })
        .collect()
}

/// Orthonormal DCT-III — the exact inverse of [`dct2`].
pub fn dct3(c: &[f64]) -> Vec<f64> {
    let n = c.len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    (0..n)
        .map(|j| {
            let jf = j as f64;
            c.iter()
                .enumerate()
                .map(|(k, &v)| {
                    let scale = if k == 0 {
                        (1.0 / nf).sqrt()
                    } else {
                        (2.0 / nf).sqrt()
                    };
                    scale * v * (std::f64::consts::PI * (jf + 0.5) * k as f64 / nf).cos()
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for n in [1usize, 2, 3, 7, 64, 100] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 5.0 + 1.0).collect();
            let back = dct3(&dct2(&x));
            for (b, orig) in back.iter().zip(&x) {
                assert!((b - orig).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn orthonormal_preserves_energy() {
        let x: Vec<f64> = (0..50).map(|i| f64::from(i % 11) - 3.0).collect();
        let c = dct2(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-9);
    }

    #[test]
    fn dc_coefficient_is_scaled_sum() {
        let x = [3.0, 1.0, 4.0, 1.0];
        let c = dct2(&x);
        assert!((c[0] - 9.0 / 2.0).abs() < 1e-12); // sum / sqrt(n)
    }

    #[test]
    fn constant_signal_is_pure_dc() {
        let c = dct2(&[5.0; 16]);
        assert!((c[0] - 5.0 * 4.0).abs() < 1e-12);
        assert!(c[1..].iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn monotone_ramp_compresses_better_in_dct_than_dft() {
        // The motivating property: a ramp (like a CDF-ish margin) has
        // most DCT energy in few coefficients, unlike the DFT.
        let x: Vec<f64> = (0..128).map(f64::from).collect();
        let c = dct2(&x);
        let total: f64 = c.iter().map(|v| v * v).sum();
        let head: f64 = c[..8].iter().map(|v| v * v).sum();
        assert!(head / total > 0.999, "head fraction {}", head / total);

        let f = crate::fft::fft_real(&x);
        let ftotal: f64 = f.iter().map(|z| z.abs() * z.abs()).sum();
        // Same 15 real dof: coefficients 0..8 plus mirrors.
        let fhead: f64 = f[..8].iter().map(|z| z.abs() * z.abs()).sum::<f64>()
            + f[121..].iter().map(|z| z.abs() * z.abs()).sum::<f64>();
        assert!(
            head / total > fhead / ftotal,
            "dct {} should beat dft {}",
            head / total,
            fhead / ftotal
        );
    }

    #[test]
    fn empty_input() {
        assert!(dct2(&[]).is_empty());
        assert!(dct3(&[]).is_empty());
    }
}
