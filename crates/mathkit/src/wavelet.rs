//! Haar wavelet transform (ordered, full decomposition) used by Privelet
//! (Xiao, Wang, Gehrke, ICDE 2010).
//!
//! Privelet publishes noisy Haar coefficients of a histogram; any range sum
//! then touches only `O(log |A|)` coefficients, giving polylogarithmic noise
//! variance. We use the unnormalised averaging convention of the Privelet
//! paper: each internal node stores `(avg_left - avg_right) / 2` and the
//! root stores the overall average, so a point value is reconstructed as a
//! signed sum of `log n + 1` coefficients with weights 1.

/// Forward Haar transform in Privelet's averaging convention.
///
/// `coeffs[0]` is the overall mean; the remaining entries are the detail
/// coefficients level by level (coarse to fine).
///
/// # Panics
/// Panics if `data.len()` is not a power of two (callers pad first; see
/// [`pad_to_pow2`]).
pub fn haar_forward(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "haar_forward needs power-of-two length"
    );
    let mut avg = data.to_vec();
    let mut out = vec![0.0; n];
    let mut len = n;
    // Collect detail coefficients bottom-up; details for the level with
    // `len/2` pairs land at out[len/2 .. len].
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = avg[2 * i];
            let b = avg[2 * i + 1];
            out[half + i] = (a - b) / 2.0;
            avg[i] = (a + b) / 2.0;
        }
        len = half;
    }
    out[0] = avg[0];
    out
}

/// Inverse of [`haar_forward`].
///
/// # Panics
/// Panics if `coeffs.len()` is not a power of two.
pub fn haar_inverse(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    assert!(
        n.is_power_of_two(),
        "haar_inverse needs power-of-two length"
    );
    let mut data = vec![0.0; n];
    data[0] = coeffs[0];
    let mut len = 1;
    while len < n {
        // Expand each of the `len` current averages into two using the
        // detail coefficients at coeffs[len .. 2*len].
        for i in (0..len).rev() {
            let a = data[i];
            let d = coeffs[len + i];
            data[2 * i] = a + d;
            data[2 * i + 1] = a - d;
        }
        len *= 2;
    }
    data
}

/// The depth (tree level) of coefficient index `i`: 0 for the root average,
/// 1 for the single coarsest detail, increasing towards the leaves. Privelet
/// calibrates the noise magnitude per level.
pub fn haar_level(i: usize) -> u32 {
    if i == 0 {
        0
    } else {
        usize::BITS - i.leading_zeros()
    }
}

/// Pads `data` with zeros up to the next power of two and returns the padded
/// vector together with the original length.
pub fn pad_to_pow2(data: &[f64]) -> (Vec<f64>, usize) {
    let n = data.len().max(1);
    let m = n.next_power_of_two();
    let mut out = data.to_vec();
    out.resize(m, 0.0);
    (out, data.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact() {
        for &n in &[1usize, 2, 4, 8, 64] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64 * 1.7).sin() * 10.0).collect();
            let back = haar_inverse(&haar_forward(&data));
            for (b, d) in back.iter().zip(&data) {
                assert!((b - d).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn known_transform() {
        // [4, 2, 5, 5]: avg 4, coarse detail (3-5)/2 = -1,
        // fine details (4-2)/2 = 1 and (5-5)/2 = 0.
        let c = haar_forward(&[4.0, 2.0, 5.0, 5.0]);
        assert_eq!(c, vec![4.0, -1.0, 1.0, 0.0]);
    }

    #[test]
    fn constant_signal_has_zero_details() {
        let c = haar_forward(&[7.0; 8]);
        assert_eq!(c[0], 7.0);
        assert!(c[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn levels() {
        assert_eq!(haar_level(0), 0);
        assert_eq!(haar_level(1), 1);
        assert_eq!(haar_level(2), 2);
        assert_eq!(haar_level(3), 2);
        assert_eq!(haar_level(4), 3);
        assert_eq!(haar_level(7), 3);
        assert_eq!(haar_level(8), 4);
    }

    #[test]
    fn padding() {
        let (p, orig) = pad_to_pow2(&[1.0, 2.0, 3.0]);
        assert_eq!(p, vec![1.0, 2.0, 3.0, 0.0]);
        assert_eq!(orig, 3);
        let (p2, _) = pad_to_pow2(&[]);
        assert_eq!(p2.len(), 1);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn forward_rejects_non_pow2() {
        let _ = haar_forward(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn point_reconstruction_uses_log_coeffs() {
        // Reconstructing data[i] from coefficients touches exactly
        // log2(n)+1 coefficients; verify via sparsity: zero all but the
        // path coefficients for i=5 in n=8 and check data[5] unchanged.
        let data: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let c = haar_forward(&data);
        // Path for index 5: 0 (root), 1, then level-2 detail index 2+ (5/4)=3? Use
        // brute force: find minimal coefficient set by zeroing others.
        let mut path = vec![0usize, 1];
        // level with 2 details starts at 2: index 2 + 5/4 = 3
        path.push(2 + 5 / 4);
        // level with 4 details starts at 4: index 4 + 5/2 = 6
        path.push(4 + 5 / 2);
        let mut sparse = vec![0.0; 8];
        for &i in &path {
            sparse[i] = c[i];
        }
        let rec = haar_inverse(&sparse);
        assert!((rec[5] - data[5]).abs() < 1e-12);
    }
}
