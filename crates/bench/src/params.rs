//! Experiment parameters (Table 3 of the paper) with environment
//! overrides.

/// Table 3 defaults plus run-control knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Number of tuples `n` (default 50 000).
    pub records: usize,
    /// Privacy budget `epsilon` (default 1.0).
    pub epsilon: f64,
    /// Number of dimensions `m` (default 8).
    pub dims: usize,
    /// Sanity bound `s` (default 1).
    pub sanity: f64,
    /// Budget ratio `k = eps1/eps2` (default 8).
    pub k_ratio: f64,
    /// Per-dimension domain size (default 1000).
    pub domain: usize,
    /// Queries per run (paper: 1000).
    pub queries: usize,
    /// Runs to average (paper: 5).
    pub runs: usize,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        Self {
            records: 50_000,
            epsilon: 1.0,
            dims: 8,
            sanity: 1.0,
            k_ratio: 8.0,
            domain: 1000,
            queries: 1000,
            runs: 5,
        }
    }
}

impl ExperimentParams {
    /// Table 3 defaults adjusted by environment variables:
    /// `RUNS=<r>` and `QUERIES=<q>` override directly; `QUICK=1` drops to
    /// 2 runs x 200 queries for smoke-testing the harness.
    pub fn from_env() -> Self {
        let mut p = Self::default();
        if std::env::var("QUICK").map(|v| v == "1").unwrap_or(false) {
            p.runs = 2;
            p.queries = 200;
        }
        if let Ok(r) = std::env::var("RUNS") {
            if let Ok(r) = r.parse() {
                p.runs = r;
            }
        }
        if let Ok(q) = std::env::var("QUERIES") {
            if let Ok(q) = q.parse() {
                p.queries = q;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_3() {
        let p = ExperimentParams::default();
        assert_eq!(p.records, 50_000);
        assert_eq!(p.epsilon, 1.0);
        assert_eq!(p.dims, 8);
        assert_eq!(p.sanity, 1.0);
        assert_eq!(p.k_ratio, 8.0);
        assert_eq!(p.domain, 1000);
        assert_eq!(p.runs, 5);
        assert_eq!(p.queries, 1000);
    }
}
