//! Regenerates one evaluation artefact of the paper; see
//! `dpcopula_bench::experiments` for the experiment definition.

use dpcopula_bench::experiments::{emit, run_fig07};
use dpcopula_bench::params::ExperimentParams;

fn main() {
    let params = ExperimentParams::from_env();
    println!("running with {params:?}");
    let tables = run_fig07(&params);
    emit(&tables);
}
