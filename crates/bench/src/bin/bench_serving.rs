//! Emits `BENCH_serving.json`: fit-once/sample-many serving costs — how
//! long a fit takes versus how cheaply its saved artifact is encoded,
//! loaded (with full validation) and served, with sampling throughput at
//! worker counts {1, 2, 4} for **both sampling profiles**. The point of
//! the artifact store in numbers: the budgeted fit happens once, while
//! each served window costs milliseconds and no epsilon.
//!
//! Doubles as the fast-profile regression gate: the run exits non-zero
//! when the `fast` profile's best sampling throughput drops below
//! [`MIN_FAST_SPEEDUP`]x the `reference` profile's — so a change that
//! quietly de-optimises the ziggurat/table/blocked-apply hot path fails
//! CI instead of shipping.
//!
//! `QUICK=1` shrinks the input and sample counts for smoke runs and
//! leaves the committed `BENCH_serving.json` untouched.

use datagen::census::us_census;
use dpcopula::{DpCopula, DpCopulaConfig, EngineOptions, FittedModel, SamplingProfile};
use dpmech::Epsilon;
use obskit::Stopwatch;
use std::fmt::Write as _;

/// Regression gate: the fast profile must sample at least this many
/// times faster than the reference profile (best rows/s over the
/// benchmarked worker counts).
const MIN_FAST_SPEEDUP: f64 = 4.0;

fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[(samples.len() - 1) / 2]
}

fn main() {
    let quick = std::env::var("QUICK").map(|v| v == "1").unwrap_or(false);
    let n = if quick { 10_000 } else { 100_000 };
    let serve_rows = if quick { 20_000 } else { 200_000 };
    let samples = if quick { 3 } else { 7 };
    let worker_counts = [1usize, 2, 4];

    let data = us_census(n, 0xcafe);
    let dp = DpCopula::new(DpCopulaConfig::kendall(
        Epsilon::new(1.0).expect("positive epsilon"),
    ));
    let opts = EngineOptions::with_workers(4);

    // The one budgeted step: fit.
    let t0 = Stopwatch::start();
    let (model, _) = dp
        .fit_staged(data.columns(), &data.domains(), 0xfeed, &opts)
        .expect("census fit succeeds");
    let fit_s = t0.elapsed().as_secs_f64();
    println!(
        "fit: {fit_s:.4}s over {n} records x {} attributes",
        model.dims()
    );

    // Encode / decode+validate medians, in memory (no disk noise).
    let mut encode = Vec::with_capacity(samples);
    let mut bytes = Vec::new();
    for _ in 0..samples {
        let t = Stopwatch::start();
        bytes = model.artifact().encode();
        encode.push(t.elapsed().as_secs_f64());
    }
    let mut load = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Stopwatch::start();
        let artifact = modelstore::decode(&bytes).expect("artifact decodes");
        let served = FittedModel::from_artifact(artifact).expect("artifact validates");
        load.push(t.elapsed().as_secs_f64());
        assert_eq!(served.dims(), model.dims());
    }
    let encode_s = median(&mut encode);
    let load_s = median(&mut load);
    println!(
        "artifact: {} bytes, encode median {encode_s:.6}s, load+validate median {load_s:.6}s",
        bytes.len()
    );

    // Serving throughput per profile and worker count.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"model_serving\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"records\": {n}, \"dims\": {}, \"serve_rows\": {serve_rows}, \
         \"samples\": {samples}, \"quick\": {quick}, \"host_cores\": {}}},",
        model.dims(),
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let _ = writeln!(out, "  \"fit_s\": {fit_s:.6},");
    let _ = writeln!(out, "  \"artifact_bytes\": {},", bytes.len());
    let _ = writeln!(out, "  \"encode_median_s\": {encode_s:.6},");
    let _ = writeln!(out, "  \"load_validate_median_s\": {load_s:.6},");
    let profiles = [SamplingProfile::Reference, SamplingProfile::Fast];
    let mut best_rows_per_s = [0.0f64; 2];
    let _ = writeln!(out, "  \"serving\": [");
    for (pi, &profile) in profiles.iter().enumerate() {
        for (wi, &workers) in worker_counts.iter().enumerate() {
            let mut times = Vec::with_capacity(samples);
            for s in 0..samples {
                // Rotate the window so runs do not share chunk boundaries.
                let offset = s * serve_rows;
                let t = Stopwatch::start();
                let cols = model.sample_range_profiled(profile, offset, serve_rows, workers);
                times.push(t.elapsed().as_secs_f64());
                assert_eq!(cols[0].len(), serve_rows);
            }
            let med = median(&mut times);
            let rows_per_s = serve_rows as f64 / med;
            best_rows_per_s[pi] = best_rows_per_s[pi].max(rows_per_s);
            println!(
                "serve profile={} workers={workers}: median {med:.4}s ({rows_per_s:.0} rows/s)",
                profile.name()
            );
            let comma = if pi + 1 < profiles.len() || wi + 1 < worker_counts.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"profile\": \"{}\", \"workers\": {workers}, \"median_s\": {med:.6}, \
                 \"rows_per_s\": {rows_per_s:.1}}}{comma}",
                profile.name()
            );
        }
    }
    let _ = writeln!(out, "  ],");
    let speedup = best_rows_per_s[1] / best_rows_per_s[0];
    let _ = writeln!(out, "  \"fast_speedup\": {speedup:.3},");
    let _ = writeln!(out, "  \"fast_speedup_floor\": {MIN_FAST_SPEEDUP}");
    out.push_str("}\n");

    let path = "BENCH_serving.json";
    if quick {
        println!("quick run: leaving {path} untouched");
    } else {
        std::fs::write(path, &out).expect("write BENCH_serving.json");
        println!("wrote {path}");
    }

    println!(
        "fast profile speedup: {speedup:.2}x (best {:.0} vs {:.0} rows/s, floor {MIN_FAST_SPEEDUP}x)",
        best_rows_per_s[1], best_rows_per_s[0]
    );
    if speedup < MIN_FAST_SPEEDUP {
        eprintln!(
            "REGRESSION: fast profile is only {speedup:.2}x the reference sampling \
             throughput (floor {MIN_FAST_SPEEDUP}x)"
        );
        std::process::exit(1);
    }
}
