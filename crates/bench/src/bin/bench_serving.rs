//! Emits `BENCH_serving.json`: fit-once/sample-many serving costs — how
//! long a fit takes versus how cheaply its saved artifact is encoded,
//! loaded (with full validation) and served, with sampling throughput at
//! worker counts {1, 2, 4}. The point of the artifact store in numbers:
//! the budgeted fit happens once, while each served window costs
//! milliseconds and no epsilon.
//!
//! `QUICK=1` shrinks the input and sample counts for smoke runs.

use datagen::census::us_census;
use dpcopula::{DpCopula, DpCopulaConfig, EngineOptions, FittedModel};
use dpmech::Epsilon;
use obskit::Stopwatch;
use std::fmt::Write as _;

fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[(samples.len() - 1) / 2]
}

fn main() {
    let quick = std::env::var("QUICK").map(|v| v == "1").unwrap_or(false);
    let n = if quick { 10_000 } else { 100_000 };
    let serve_rows = if quick { 20_000 } else { 200_000 };
    let samples = if quick { 3 } else { 7 };
    let worker_counts = [1usize, 2, 4];

    let data = us_census(n, 0xcafe);
    let dp = DpCopula::new(DpCopulaConfig::kendall(
        Epsilon::new(1.0).expect("positive epsilon"),
    ));
    let opts = EngineOptions::with_workers(4);

    // The one budgeted step: fit.
    let t0 = Stopwatch::start();
    let (model, _) = dp
        .fit_staged(data.columns(), &data.domains(), 0xfeed, &opts)
        .expect("census fit succeeds");
    let fit_s = t0.elapsed().as_secs_f64();
    println!(
        "fit: {fit_s:.4}s over {n} records x {} attributes",
        model.dims()
    );

    // Encode / decode+validate medians, in memory (no disk noise).
    let mut encode = Vec::with_capacity(samples);
    let mut bytes = Vec::new();
    for _ in 0..samples {
        let t = Stopwatch::start();
        bytes = model.artifact().encode();
        encode.push(t.elapsed().as_secs_f64());
    }
    let mut load = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Stopwatch::start();
        let artifact = modelstore::decode(&bytes).expect("artifact decodes");
        let served = FittedModel::from_artifact(artifact).expect("artifact validates");
        load.push(t.elapsed().as_secs_f64());
        assert_eq!(served.dims(), model.dims());
    }
    let encode_s = median(&mut encode);
    let load_s = median(&mut load);
    println!(
        "artifact: {} bytes, encode median {encode_s:.6}s, load+validate median {load_s:.6}s",
        bytes.len()
    );

    // Serving throughput per worker count.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"model_serving\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"records\": {n}, \"dims\": {}, \"serve_rows\": {serve_rows}, \
         \"samples\": {samples}, \"quick\": {quick}, \"host_cores\": {}}},",
        model.dims(),
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let _ = writeln!(out, "  \"fit_s\": {fit_s:.6},");
    let _ = writeln!(out, "  \"artifact_bytes\": {},", bytes.len());
    let _ = writeln!(out, "  \"encode_median_s\": {encode_s:.6},");
    let _ = writeln!(out, "  \"load_validate_median_s\": {load_s:.6},");
    let _ = writeln!(out, "  \"serving\": [");
    for (wi, &workers) in worker_counts.iter().enumerate() {
        let mut times = Vec::with_capacity(samples);
        for s in 0..samples {
            // Rotate the window so runs do not share chunk boundaries.
            let offset = s * serve_rows;
            let t = Stopwatch::start();
            let cols = model.sample_range(offset, serve_rows, workers);
            times.push(t.elapsed().as_secs_f64());
            assert_eq!(cols[0].len(), serve_rows);
        }
        let med = median(&mut times);
        let rows_per_s = serve_rows as f64 / med;
        println!("serve workers={workers}: median {med:.4}s ({rows_per_s:.0} rows/s)");
        let comma = if wi + 1 < worker_counts.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"workers\": {workers}, \"median_s\": {med:.6}, \
             \"rows_per_s\": {rows_per_s:.1}}}{comma}"
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    let path = "BENCH_serving.json";
    std::fs::write(path, &out).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
