//! Regenerates the paper's Figure 3 scatter data and the margin-invariance
//! table; see `dpcopula_bench::experiments::run_fig03`.

use dpcopula_bench::experiments::{emit, run_fig03};
use dpcopula_bench::params::ExperimentParams;

fn main() {
    let params = ExperimentParams::from_env();
    let tables = run_fig03(&params);
    emit(&tables);
}
