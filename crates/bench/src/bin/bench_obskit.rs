//! Emits `BENCH_obskit.json` and gates the observability layer's cost:
//! with metrics off (`MetricsSink::off()`), the instrumentation must
//! cost less than `OBSKIT_GATE_PCT` percent (default 2%) of the staged
//! pipeline's wall clock.
//!
//! The disabled path cannot be measured by differencing two wall-clock
//! runs — at millisecond pipeline scale, scheduler noise dwarfs a
//! branch-per-call budget — so the gate is computed as a deterministic
//! upper bound instead:
//!
//! 1. **micro** — nanoseconds per *disabled* `sink.add` call in a
//!    tight loop (the one-branch fast path every instrumented site
//!    pays with metrics off), plus the enabled-path cost for scale;
//! 2. **call census** — one pipeline run against a counting
//!    [`Recorder`] learns exactly how many record calls (counter,
//!    gauge, histogram, span) one run makes;
//! 3. **bound** — `calls x disabled ns/op` versus the min-of-samples
//!    pipeline wall clock with the sink off. The bound is pessimistic:
//!    it charges every disabled call the full measured branch cost.
//!
//! Exits non-zero when the bound exceeds the gate. The enabled-path
//! overhead is also measured (interleaved min-of-samples) and reported
//! in the JSON, but only informationally — full recording is allowed
//! to cost more than the no-op branch.
//!
//! `QUICK=1` shrinks the input and sample count for smoke runs.

use datagen::census::us_census;
use dpcopula::{DpCopulaConfig, EngineOptions, SynthesisRequest};
use dpmech::Epsilon;
use obskit::registry::{Recorder, Unit};
use obskit::{MetricsRegistry, MetricsSink, Stopwatch};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts record calls without storing anything — the call census the
/// disabled-cost bound multiplies by the per-call branch cost.
#[derive(Debug, Default)]
struct CountingRecorder {
    calls: AtomicU64,
}

impl Recorder for CountingRecorder {
    fn enabled(&self) -> bool {
        true
    }
    fn add(&self, _: &str, _: &[(&str, &str)], _: Unit, _: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
    fn gauge_set(&self, _: &str, _: &[(&str, &str)], _: Unit, _: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
    fn observe(&self, _: &str, _: &[(&str, &str)], _: Unit, _: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
}

fn ns_per_add(sink: &MetricsSink, iters: u64) -> f64 {
    let t0 = Stopwatch::start();
    for i in 0..iters {
        black_box(sink).add(black_box("bench_noop_total"), Unit::Count, black_box(i & 1));
    }
    t0.elapsed_ns() as f64 / iters as f64
}

fn main() {
    let quick = std::env::var("QUICK").map(|v| v == "1").unwrap_or(false);
    let gate_pct: f64 = std::env::var("OBSKIT_GATE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    // The pipeline at these sizes runs in milliseconds, so min-of-many
    // is cheap — and a 2% gate on a millisecond-scale measurement needs
    // many samples for the minima to converge.
    let n = if quick { 10_000 } else { 50_000 };
    let samples = if quick { 21 } else { 41 };

    // Micro: cost of one record call, disabled vs enabled.
    let iters = 20_000_000u64;
    let off_ns = ns_per_add(&MetricsSink::off(), iters);
    let registry = Arc::new(MetricsRegistry::new());
    let on_ns = ns_per_add(&MetricsSink::to_registry(registry.clone()), iters / 10);
    println!("micro: disabled add {off_ns:.3} ns/op, enabled add {on_ns:.3} ns/op");

    // Pipeline: disabled-sink runs vs enabled-sink runs, interleaved.
    let data = us_census(n, 0x0b51);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).expect("positive epsilon"));
    let domains = data.domains();
    let opts = EngineOptions::with_workers(2);

    // Call census: exactly how many record calls one run makes.
    let counter = Arc::new(CountingRecorder::default());
    let census_sink = MetricsSink::to_recorder(counter.clone());
    let _ = SynthesisRequest::from_config(data.columns(), &domains, config)
        .engine(opts)
        .seed(0xca11)
        .metrics(census_sink)
        .run()
        .expect("census synthesis succeeds");
    let record_calls = counter.calls.load(Ordering::Relaxed);
    println!("call census: {record_calls} record calls per pipeline run");
    let run = |sink: MetricsSink, seed: u64| -> f64 {
        let t0 = Stopwatch::start();
        let (synthesis, _) = SynthesisRequest::from_config(data.columns(), &domains, config)
            .engine(opts)
            .seed(seed)
            .metrics(sink)
            .run()
            .expect("census synthesis succeeds");
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(synthesis.columns.len(), domains.len());
        dt
    };
    // Warm-up run so page faults and lazy init hit neither arm.
    let _ = run(MetricsSink::off(), 0xdead);
    let mut off_times = Vec::with_capacity(samples);
    let mut on_times = Vec::with_capacity(samples);
    for s in 0..samples as u64 {
        off_times.push(run(MetricsSink::off(), 0xf00d + s));
        on_times.push(run(MetricsSink::to_registry(registry.clone()), 0xf00d + s));
    }
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let (off_s, on_s) = (min(&off_times), min(&on_times));
    let enabled_overhead_pct = ((on_s / off_s) - 1.0).max(0.0) * 100.0;
    // The gate: a pessimistic bound on what the disabled branches cost
    // one run, as a share of that run's wall clock.
    let noop_bound_s = record_calls as f64 * off_ns * 1e-9;
    let noop_overhead_pct = noop_bound_s / off_s * 100.0;
    println!(
        "pipeline: disabled sink min {off_s:.4}s, enabled sink min {on_s:.4}s \
         (recording overhead {enabled_overhead_pct:.2}%)"
    );
    println!(
        "no-op bound: {record_calls} calls x {off_ns:.3} ns = {:.1} us, \
         {noop_overhead_pct:.3}% of the pipeline (gate {gate_pct}%)",
        noop_bound_s * 1e6
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"obskit_overhead\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"records\": {n}, \"samples\": {samples}, \"quick\": {quick}, \
         \"gate_pct\": {gate_pct}, \"host_cores\": {}}},",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let _ = writeln!(out, "  \"disabled_add_ns_per_op\": {off_ns:.4},");
    let _ = writeln!(out, "  \"enabled_add_ns_per_op\": {on_ns:.4},");
    let _ = writeln!(out, "  \"record_calls_per_run\": {record_calls},");
    let _ = writeln!(out, "  \"pipeline_disabled_min_s\": {off_s:.6},");
    let _ = writeln!(out, "  \"pipeline_enabled_min_s\": {on_s:.6},");
    let _ = writeln!(
        out,
        "  \"enabled_recording_overhead_pct\": {enabled_overhead_pct:.3},"
    );
    let _ = writeln!(
        out,
        "  \"noop_overhead_bound_pct\": {noop_overhead_pct:.4},"
    );
    let _ = writeln!(out, "  \"gate_passed\": {}", noop_overhead_pct < gate_pct);
    out.push_str("}\n");
    let path = "BENCH_obskit.json";
    std::fs::write(path, &out).expect("write BENCH_obskit.json");
    println!("wrote {path}");

    if noop_overhead_pct >= gate_pct {
        eprintln!(
            "obskit no-op overhead gate FAILED: {noop_overhead_pct:.3}% >= {gate_pct}% \
             (override with OBSKIT_GATE_PCT)"
        );
        std::process::exit(1);
    }
}
