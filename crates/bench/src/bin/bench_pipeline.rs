//! Emits `BENCH_pipeline.json`: machine-readable per-stage wall-clock
//! statistics (min/median/p95 seconds) of the staged synthesis engine at
//! worker counts {1, 2, 4} on fig11-sized census data, plus the legacy
//! serial correlation estimator (`dp_correlation_matrix`, per-pair sorts,
//! single-threaded) as the reference the correlation-stage speedup is
//! measured against, and the sampling stage timed under both sampling
//! profiles (`reference` vs the ziggurat/table `fast` hot path).
//!
//! `QUICK=1` shrinks the input and sample count for smoke runs.

use datagen::census::us_census;
use datagen::RowSource;
use dpcopula::kendall::{dp_correlation_matrix, SamplingStrategy};
use dpcopula::{DpCopula, DpCopulaConfig, EngineOptions, SamplingProfile, SynthesisRequest};
use dpmech::Epsilon;
use obskit::{MetricsRegistry, MetricsSink, Stopwatch};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;

/// Ceiling on summary-merge time as a fraction of the single-shard fit:
/// sharding pays its parallel-composition bookkeeping out of the fit it
/// accelerates, so the merge must stay a small tax.
const MAX_MERGE_OVERHEAD: f64 = 0.15;

/// Floor on the 4-shard fit speedup over the serial single-shard fit,
/// asserted only on hosts with at least 4 cores.
const MIN_SHARD_SPEEDUP: f64 = 2.0;

/// min/median/p95 over a set of timing samples, in seconds.
#[derive(Debug, Clone, Copy)]
struct Stats {
    min: f64,
    median: f64,
    p95: f64,
}

fn stats(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty());
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let pick = |p: f64| s[((s.len() - 1) as f64 * p).round() as usize];
    Stats {
        min: s[0],
        median: pick(0.5),
        p95: pick(0.95),
    }
}

fn json_stats(s: Stats) -> String {
    format!(
        "{{\"min_s\": {:.6}, \"median_s\": {:.6}, \"p95_s\": {:.6}}}",
        s.min, s.median, s.p95
    )
}

/// A [`RowSource`] adapter counting the blocks it forwards and the
/// largest one seen — the row-buffer census behind the out-of-core
/// memory gate.
struct BlockCensus<S> {
    inner: S,
    peak_block_rows: usize,
    blocks: u64,
}

impl<S: RowSource> BlockCensus<S> {
    fn new(inner: S) -> Self {
        Self {
            inner,
            peak_block_rows: 0,
            blocks: 0,
        }
    }
}

impl<S: RowSource> RowSource for BlockCensus<S> {
    fn attributes(&self) -> &[datagen::Attribute] {
        self.inner.attributes()
    }

    fn rewindable(&self) -> bool {
        self.inner.rewindable()
    }

    fn next_block(&mut self) -> Result<Option<datagen::Block>, datagen::SourceError> {
        let block = self.inner.next_block()?;
        if let Some(b) = &block {
            self.blocks += 1;
            self.peak_block_rows = self.peak_block_rows.max(b.rows());
        }
        Ok(block)
    }

    fn rewind(&mut self) -> Result<(), datagen::SourceError> {
        self.inner.rewind()
    }

    fn known_rows(&self) -> Option<usize> {
        self.inner.known_rows()
    }
}

const STAGE_NAMES: [&str; 5] = [
    "budget_plan",
    "margins",
    "correlation",
    "pd_repair",
    "sampling",
];

fn main() {
    let quick = std::env::var("QUICK").map(|v| v == "1").unwrap_or(false);
    let n = if quick { 10_000 } else { 100_000 };
    let samples = if quick { 3 } else { 7 };
    let epsilon = 1.0;
    let k_ratio = 8.0;
    let worker_counts = [1usize, 2, 4];

    let data = us_census(n, 0xbe9c);
    let m = data.domains().len();
    let eps = Epsilon::new(epsilon).expect("positive epsilon");
    let config = DpCopulaConfig::kendall(eps).with_k_ratio(k_ratio);
    let (_, eps2) = eps.split_ratio(k_ratio);

    // Reference: the legacy serial correlation estimator, exactly as the
    // pre-engine pipeline ran it (per-pair lexicographic sorts, one
    // thread, repair included).
    let mut legacy = Vec::with_capacity(samples);
    for s in 0..samples {
        let mut rng = StdRng::seed_from_u64(0xaced + s as u64);
        let t0 = Stopwatch::start();
        let p = dp_correlation_matrix(data.columns(), eps2, SamplingStrategy::Auto, &mut rng);
        legacy.push(t0.elapsed().as_secs_f64());
        assert_eq!(p.rows(), m);
    }
    let legacy_stats = stats(&legacy);
    println!(
        "legacy serial correlation: median {:.4}s over {samples} samples",
        legacy_stats.median
    );

    // The staged engine at each worker count: per-stage duration vectors.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"pipeline_stages\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"records\": {n}, \"dims\": {m}, \"epsilon\": {epsilon}, \
         \"k_ratio\": {k_ratio}, \"samples\": {samples}, \"quick\": {quick}, \
         \"host_cores\": {}}},",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let _ = writeln!(
        out,
        "  \"legacy_serial_correlation\": {},",
        json_stats(legacy_stats)
    );

    let _ = writeln!(out, "  \"workers\": [");
    let mut correlation_medians = Vec::new();
    for (wi, &workers) in worker_counts.iter().enumerate() {
        let mut per_stage: Vec<Vec<f64>> = (0..5).map(|_| Vec::with_capacity(samples)).collect();
        let mut totals = Vec::with_capacity(samples);
        for s in 0..samples {
            let (_, report) = DpCopula::new(config)
                .synthesize_staged(
                    data.columns(),
                    &data.domains(),
                    0xf00d + s as u64,
                    &EngineOptions::with_workers(workers),
                )
                .expect("census synthesis succeeds");
            for (bucket, (_, d)) in per_stage.iter_mut().zip(report.timings.stages()) {
                bucket.push(d.as_secs_f64());
            }
            totals.push(report.timings.total().as_secs_f64());
        }
        let corr = stats(&per_stage[2]);
        correlation_medians.push(corr.median);
        println!(
            "engine workers={workers}: total median {:.4}s, correlation median {:.4}s",
            stats(&totals).median,
            corr.median
        );

        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"workers\": {workers},");
        let _ = writeln!(out, "      \"stages\": {{");
        for (si, name) in STAGE_NAMES.iter().enumerate() {
            let comma = if si + 1 < STAGE_NAMES.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        \"{name}\": {}{comma}",
                json_stats(stats(&per_stage[si]))
            );
        }
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"total\": {}", json_stats(stats(&totals)));
        let comma = if wi + 1 < worker_counts.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");

    // The sampling stage under each profile, full engine at 4 workers:
    // same fitted model shape, different hot path.
    let _ = writeln!(out, "  \"sampling_profiles\": {{");
    let profiles = [SamplingProfile::Reference, SamplingProfile::Fast];
    for (pi, &profile) in profiles.iter().enumerate() {
        let mut sampling = Vec::with_capacity(samples);
        for s in 0..samples {
            let (_, report) = DpCopula::new(config.with_profile(profile))
                .synthesize_staged(
                    data.columns(),
                    &data.domains(),
                    0xf00d + s as u64,
                    &EngineOptions::with_workers(4),
                )
                .expect("census synthesis succeeds");
            let (_, d) = report
                .timings
                .stages()
                .into_iter()
                .find(|(name, _)| *name == "sampling")
                .expect("sampling stage timed");
            sampling.push(d.as_secs_f64());
        }
        let st = stats(&sampling);
        let rows_per_s = n as f64 / st.median;
        println!(
            "sampling profile={}: median {:.4}s ({rows_per_s:.0} rows/s)",
            profile.name(),
            st.median
        );
        let comma = if pi + 1 < profiles.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"min_s\": {:.6}, \"median_s\": {:.6}, \"p95_s\": {:.6}, \
             \"rows_per_s\": {rows_per_s:.1}}}{comma}",
            profile.name(),
            st.min,
            st.median,
            st.p95
        );
    }
    let _ = writeln!(out, "  }},");

    // Sharded fit: wall clock of the fit (no sampling) at shard counts
    // {1, 2, 4} with workers matched to shards, so the single-shard
    // entry is the serial fit the speedup is measured against. Per-run
    // summary-build and summary-merge time comes from the engine's
    // pipeline/shard_fit and pipeline/shard_merge spans.
    let shard_counts = [1usize, 2, 4];
    let mut fit_medians = Vec::new();
    let mut merge_medians = Vec::new();
    let _ = writeln!(out, "  \"fit_shards\": [");
    for (si, &shards) in shard_counts.iter().enumerate() {
        let mut fits = Vec::with_capacity(samples);
        let mut builds = Vec::with_capacity(samples);
        let mut merges = Vec::with_capacity(samples);
        for s in 0..samples {
            let registry = Arc::new(MetricsRegistry::new());
            let mut opts = EngineOptions::with_workers(shards);
            opts.shards = shards;
            let t0 = Stopwatch::start();
            let (_, _) = SynthesisRequest::from_config(data.columns(), &data.domains(), config)
                .engine(opts)
                .seed(0xfee1 + s as u64)
                .metrics(MetricsSink::to_registry(registry.clone()))
                .fit()
                .expect("census fit succeeds");
            fits.push(t0.elapsed().as_secs_f64());
            let span_sum = |path: &str| {
                registry
                    .snapshot()
                    .get(&format!("span_ns{{span=\"{path}\"}}"))
                    .and_then(|e| e.value.as_hist().map(|h| h.sum))
                    .unwrap_or(0) as f64
                    / 1e9
            };
            builds.push(span_sum("pipeline/shard_fit"));
            merges.push(span_sum("pipeline/shard_merge"));
        }
        let fit = stats(&fits);
        let merge = stats(&merges);
        fit_medians.push(fit.median);
        merge_medians.push(merge.median);
        println!(
            "fit shards={shards}: total median {:.4}s, summary build {:.4}s, merge {:.4}s",
            fit.median,
            stats(&builds).median,
            merge.median
        );
        let comma = if si + 1 < shard_counts.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"shards\": {shards}, \"workers\": {shards}, \
             \"fit\": {}, \"summary_build\": {}, \"summary_merge\": {}}}{comma}",
            json_stats(fit),
            json_stats(stats(&builds)),
            json_stats(merge)
        );
    }
    let _ = writeln!(out, "  ],");
    let merge_overhead = merge_medians[shard_counts.len() - 1] / fit_medians[0];
    let shard_speedup = fit_medians[0] / fit_medians[shard_counts.len() - 1];
    let _ = writeln!(out, "  \"shard_merge_overhead_frac\": {merge_overhead:.4},");
    let _ = writeln!(out, "  \"shard_speedup_4_vs_1\": {shard_speedup:.3},");

    // Distributed out-of-core fit: the same census rows as 4 CSV part
    // files on disk, `fit_shard` per part through a counting RowSource
    // and one `merge_shards` — the coordinator path minus the process
    // spawns. The row-buffer census proves the out-of-core claim: no
    // ingested block ever exceeds the configured block size, so peak
    // ingestion memory is bounded by `block_rows × dims × 4` bytes per
    // shard worker regardless of shard row count.
    let distfit_shards = 4usize;
    let block_rows = 4096usize;
    let dir = std::env::temp_dir().join(format!("dpcopula-bench-distfit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create distfit scratch dir");
    let specs = dpcopula::shard::shard_specs(n, distfit_shards);
    let part_paths: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let part_cols: Vec<Vec<u32>> = data
                .columns()
                .iter()
                .map(|c| c[spec.start..spec.end].to_vec())
                .collect();
            let part = datagen::Dataset::new(data.attributes().to_vec(), part_cols);
            let path = dir.join(format!("part{i}.csv"));
            datagen::io::save_csv(&part, &path).expect("write shard csv");
            path
        })
        .collect();

    let mut shard_fit_totals = Vec::with_capacity(samples);
    let mut merge_times = Vec::with_capacity(samples);
    let mut peak_block_rows = 0usize;
    let mut census_blocks = 0u64;
    for s in 0..samples {
        let mut artifacts = Vec::with_capacity(distfit_shards);
        let t0 = Stopwatch::start();
        for (i, path) in part_paths.iter().enumerate() {
            let mut source = BlockCensus::new(
                datagen::CsvFileSource::open_with_block_rows(path, block_rows)
                    .expect("open shard csv"),
            );
            let artifact = dpcopula::fit_shard(
                &mut source,
                &config,
                i,
                distfit_shards,
                n,
                0xfee1 + s as u64,
                &EngineOptions::with_workers(1),
                &MetricsSink::off(),
            )
            .expect("shard fit succeeds");
            peak_block_rows = peak_block_rows.max(source.peak_block_rows);
            census_blocks += source.blocks;
            artifacts.push((format!("part{i}.dpcs"), artifact));
        }
        shard_fit_totals.push(t0.elapsed().as_secs_f64());
        let t1 = Stopwatch::start();
        let merged = dpcopula::merge_shards(&artifacts, distfit_shards, &MetricsSink::off())
            .expect("merge succeeds");
        merge_times.push(t1.elapsed().as_secs_f64());
        assert_eq!(merged.dims(), m);
    }
    std::fs::remove_dir_all(&dir).expect("remove distfit scratch dir");
    let peak_block_bytes = peak_block_rows * m * std::mem::size_of::<u32>();
    let distfit_fit = stats(&shard_fit_totals);
    let distfit_merge = stats(&merge_times);
    println!(
        "distfit shards={distfit_shards}: fit-shard total median {:.4}s, merge median {:.4}s, \
         peak block {peak_block_rows} rows ({peak_block_bytes} B) over {census_blocks} blocks",
        distfit_fit.median, distfit_merge.median
    );
    let _ = writeln!(
        out,
        "  \"distfit\": {{\"shards\": {distfit_shards}, \"block_rows\": {block_rows}, \
         \"fit_shard_total\": {}, \"merge\": {}, \"peak_block_rows\": {peak_block_rows}, \
         \"peak_block_bytes\": {peak_block_bytes}, \"blocks\": {census_blocks}}},",
        json_stats(distfit_fit),
        json_stats(distfit_merge)
    );
    if peak_block_rows > block_rows {
        eprintln!(
            "REGRESSION: out-of-core ingestion produced a {peak_block_rows}-row block \
             past the {block_rows}-row bound — the fit is no longer streaming"
        );
        std::process::exit(1);
    }

    // Correlation-stage speedup of the engine over the legacy serial
    // estimator, at each worker count (medians).
    let _ = writeln!(out, "  \"correlation_speedup_vs_legacy\": {{");
    for (wi, &workers) in worker_counts.iter().enumerate() {
        let comma = if wi + 1 < worker_counts.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    \"{workers}\": {:.3}{comma}",
            legacy_stats.median / correlation_medians[wi]
        );
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    let path = "BENCH_pipeline.json";
    if quick {
        println!("quick run: leaving {path} untouched");
    } else {
        std::fs::write(path, &out).expect("write BENCH_pipeline.json");
        println!("wrote {path}");
    }
    println!(
        "correlation speedup vs legacy at 4 workers: {:.2}x",
        legacy_stats.median / correlation_medians[worker_counts.len() - 1]
    );

    // Gates. Merge overhead: combining per-shard summaries (histogram
    // sums, cross-shard concordance, ledger max) must cost a small
    // fraction of the fit it parallelises.
    println!(
        "shard merge overhead: {:.1}% of the single-shard fit (ceiling {:.0}%)",
        merge_overhead * 100.0,
        MAX_MERGE_OVERHEAD * 100.0
    );
    if merge_overhead >= MAX_MERGE_OVERHEAD {
        eprintln!(
            "REGRESSION: merging 4 shard summaries costs {:.1}% of the \
             single-shard fit (ceiling {:.0}%)",
            merge_overhead * 100.0,
            MAX_MERGE_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    // Speedup floor only means something with real cores to spread
    // shards over; single-core CI boxes skip it.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("4-shard fit speedup over serial fit: {shard_speedup:.2}x ({cores} cores)");
    if cores >= 4 && shard_speedup < MIN_SHARD_SPEEDUP {
        eprintln!(
            "REGRESSION: 4-shard fit is only {shard_speedup:.2}x the serial \
             single-shard fit (floor {MIN_SHARD_SPEEDUP}x on a {cores}-core host)"
        );
        std::process::exit(1);
    }
}
