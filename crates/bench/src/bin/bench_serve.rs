//! Emits `BENCH_serve.json`: load-test of the `dpcopula-serve` daemon —
//! closed-loop clients hammering `POST /v1/sample` over keep-alive
//! connections against an in-process server, reporting request latency
//! percentiles (p50/p95/p99) and end-to-end rows/s per client count.
//!
//! Doubles as the serving-overhead regression gate: the run exits
//! non-zero when the best HTTP throughput falls below
//! [`MIN_HTTP_EFFICIENCY`] of the in-process baseline (sampling the
//! same windows and CSV-encoding them without a socket). An absolute
//! rows/s floor would be a host-speed lottery; the ratio pins what the
//! daemon itself adds — framing, routing, registry lookup, metrics —
//! and fails CI if that overhead regresses.
//!
//! `QUICK=1` shrinks client/request counts for smoke runs and leaves
//! the committed `BENCH_serve.json` untouched.

use dpcopula_serve::{ServeConfig, Server};
use obskit::Stopwatch;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Regression gate: best end-to-end HTTP rows/s must be at least this
/// fraction of the in-process sample+encode baseline.
const MIN_HTTP_EFFICIENCY: f64 = 0.15;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One keep-alive request/response cycle; returns the response body.
/// Panics unless the daemon answers 200 — for the load sections where
/// every request must be admitted.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
    body: &[u8],
) -> Vec<u8> {
    let (status, body) = roundtrip_any(stream, reader, path, body);
    assert_eq!(status, 200, "bench requests must succeed");
    body
}

/// One keep-alive request/response cycle; returns status and body.
/// Tolerates non-200 answers — the overload section *expects* 503s.
fn roundtrip_any(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
    body: &[u8],
) -> (u16, Vec<u8>) {
    // Head and body in one write: a separate small head write trips
    // client-side Nagle against server-side delayed ACK (~40ms stalls).
    let mut request = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    stream.write_all(&request).expect("request");
    let mut content_length = 0usize;
    let mut status = 0u16;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response head line");
        let line = line.trim_end();
        if status == 0 {
            status = line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status code");
        }
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    (status, body)
}

fn sample_body(rows: usize, offset: usize) -> Vec<u8> {
    format!("{{\"model\":\"bench\",\"offset\":{offset},\"rows\":{rows}}}").into_bytes()
}

fn main() {
    let quick = std::env::var("QUICK").map(|v| v == "1").unwrap_or(false);
    let records = if quick { 5_000 } else { 50_000 };
    let rows_per_request = if quick { 500 } else { 2_000 };
    let requests_per_client = if quick { 8 } else { 50 };
    let client_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };

    // Stage: a temp model dir and an in-process daemon on an ephemeral
    // port, sized like the CI smoke config.
    let model_dir =
        std::env::temp_dir().join(format!("dpcopula-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&model_dir);
    std::fs::create_dir_all(&model_dir).expect("create model dir");
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        model_dir: model_dir.clone(),
        pool_workers: 4,
        ..ServeConfig::default()
    })
    .expect("bind bench server");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle().expect("shutdown handle");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Fit once over HTTP — the budgeted step, timed end to end.
    let data = datagen::census::us_census(records, 0xbead);
    let mut csv = Vec::new();
    datagen::io::write_csv(&data, &mut csv).expect("encode training csv");
    let csv = String::from_utf8(csv).expect("csv utf8");
    let fit = format!(
        "{{\"id\":\"bench\",\"epsilon\":1.0,\"seed\":7,\"csv\":\"{}\"}}",
        csv.replace('\n', "\\n")
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let t0 = Stopwatch::start();
    roundtrip(&mut stream, &mut reader, "/v1/fit", fit.as_bytes());
    let fit_s = t0.elapsed().as_secs_f64();
    println!("fit over HTTP: {fit_s:.4}s ({records} records)");

    // In-process baseline: the same windows sampled and CSV-encoded
    // directly — everything the sample handler does minus the socket.
    let model = dpcopula::FittedModel::load(model_dir.join("bench.dpcm")).expect("load model");
    let attributes: Vec<datagen::Attribute> = model
        .artifact()
        .schema
        .iter()
        .map(|a| datagen::Attribute::new(a.name.clone(), a.domain))
        .collect();
    let baseline_requests = requests_per_client.min(20);
    let t0 = Stopwatch::start();
    for i in 0..baseline_requests {
        let cols = model
            .try_sample_range(i * rows_per_request, rows_per_request, 1)
            .expect("baseline window");
        let dataset = datagen::Dataset::new(attributes.clone(), cols);
        let mut bytes = Vec::new();
        datagen::io::write_csv(&dataset, &mut bytes).expect("baseline encode");
        assert!(!bytes.is_empty());
    }
    let inprocess_rows_per_s =
        (baseline_requests * rows_per_request) as f64 / t0.elapsed().as_secs_f64();
    println!("in-process baseline: {inprocess_rows_per_s:.0} rows/s");

    // Closed-loop load: each client thread issues sequential keep-alive
    // sample requests; latency is per-request wall clock.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"serve_daemon\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"records\": {records}, \"rows_per_request\": {rows_per_request}, \
         \"requests_per_client\": {requests_per_client}, \"quick\": {quick}, \
         \"host_cores\": {}}},",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let _ = writeln!(out, "  \"fit_http_s\": {fit_s:.6},");
    let _ = writeln!(
        out,
        "  \"inprocess_rows_per_s\": {inprocess_rows_per_s:.1},"
    );
    let _ = writeln!(out, "  \"runs\": [");
    let mut best_rows_per_s = 0.0f64;
    let mut loaded_p99_ms = 0.0f64;
    for (ci, &clients) in client_counts.iter().enumerate() {
        let wall = Stopwatch::start();
        let workers: Vec<std::thread::JoinHandle<Vec<f64>>> = (0..clients)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("client connect");
                    stream.set_nodelay(true).expect("client nodelay");
                    let mut reader =
                        BufReader::new(stream.try_clone().expect("clone client stream"));
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    for r in 0..requests_per_client {
                        // Distinct windows per client: identical request
                        // streams would measure a degenerate cache.
                        let offset = (c * requests_per_client + r) * rows_per_request;
                        let body = sample_body(rows_per_request, offset);
                        let t = Stopwatch::start();
                        let reply = roundtrip(&mut stream, &mut reader, "/v1/sample", &body);
                        latencies.push(t.elapsed().as_secs_f64());
                        assert!(!reply.is_empty());
                    }
                    latencies
                })
            })
            .collect();
        let mut latencies: Vec<f64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect();
        let wall_s = wall.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let total_rows = (clients * requests_per_client * rows_per_request) as f64;
        let rows_per_s = total_rows / wall_s;
        best_rows_per_s = best_rows_per_s.max(rows_per_s);
        let (p50, p95, p99) = (
            percentile(&latencies, 0.50) * 1e3,
            percentile(&latencies, 0.95) * 1e3,
            percentile(&latencies, 0.99) * 1e3,
        );
        loaded_p99_ms = p99;
        println!(
            "clients={clients}: p50 {p50:.2}ms p95 {p95:.2}ms p99 {p99:.2}ms, {rows_per_s:.0} rows/s"
        );
        let comma = if ci + 1 < client_counts.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"clients\": {clients}, \"p50_ms\": {p50:.3}, \"p95_ms\": {p95:.3}, \
             \"p99_ms\": {p99:.3}, \"rows_per_s\": {rows_per_s:.1}}}{comma}"
        );
    }
    let _ = writeln!(out, "  ],");

    // Overload: more concurrent clients than the sample gate admits,
    // against a second daemon with a deliberately tiny `max_inflight`.
    // The point under test is graceful shedding — the excess must turn
    // into fast 503s instead of a queue, so the tail latency of *every*
    // response (admitted or shed) stays bounded.
    let overload_clients = if quick { 4 } else { 8 };
    let overload_requests = if quick { 6 } else { 25 };
    let max_inflight = if quick { 1 } else { 2 };
    let overload_server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        model_dir: model_dir.clone(),
        pool_workers: overload_clients,
        max_inflight,
        ..ServeConfig::default()
    })
    .expect("bind overload server");
    let overload_addr = overload_server.local_addr().expect("overload addr");
    let overload_handle = overload_server.shutdown_handle().expect("overload handle");
    let overload_thread =
        std::thread::spawn(move || overload_server.run().expect("overload server run"));
    let workers: Vec<std::thread::JoinHandle<Vec<(u16, f64)>>> = (0..overload_clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(overload_addr).expect("overload connect");
                stream.set_nodelay(true).expect("overload nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone overload stream"));
                let mut outcomes = Vec::with_capacity(overload_requests);
                for r in 0..overload_requests {
                    let offset = (c * overload_requests + r) * rows_per_request;
                    let body = sample_body(rows_per_request, offset);
                    let t = Stopwatch::start();
                    let (status, _) = roundtrip_any(&mut stream, &mut reader, "/v1/sample", &body);
                    outcomes.push((status, t.elapsed().as_secs_f64()));
                }
                outcomes
            })
        })
        .collect();
    let outcomes: Vec<(u16, f64)> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("overload client thread"))
        .collect();
    overload_handle.shutdown();
    overload_thread.join().expect("overload server thread");
    let admitted = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed = outcomes.iter().filter(|(s, _)| *s == 503).count();
    assert_eq!(
        admitted + shed,
        outcomes.len(),
        "overload responses must be 200 or 503, nothing else"
    );
    let mut overload_lat: Vec<f64> = outcomes.iter().map(|(_, l)| *l).collect();
    overload_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let overload_p50 = percentile(&overload_lat, 0.50) * 1e3;
    let overload_p99 = percentile(&overload_lat, 0.99) * 1e3;
    println!(
        "overload clients={overload_clients} max_inflight={max_inflight}: \
         {admitted} admitted, {shed} shed, p50 {overload_p50:.2}ms p99 {overload_p99:.2}ms"
    );
    let _ = writeln!(
        out,
        "  \"overload\": {{\"clients\": {overload_clients}, \"max_inflight\": {max_inflight}, \
         \"requests\": {}, \"admitted\": {admitted}, \"shed\": {shed}, \
         \"p50_ms\": {overload_p50:.3}, \"p99_ms\": {overload_p99:.3}}},",
        outcomes.len()
    );

    let efficiency = best_rows_per_s / inprocess_rows_per_s;
    let _ = writeln!(out, "  \"best_rows_per_s\": {best_rows_per_s:.1},");
    let _ = writeln!(out, "  \"http_efficiency\": {efficiency:.3},");
    let _ = writeln!(out, "  \"http_efficiency_floor\": {MIN_HTTP_EFFICIENCY}");
    out.push_str("}\n");

    handle.shutdown();
    server_thread.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&model_dir);

    let path = "BENCH_serve.json";
    if quick {
        println!("quick run: leaving {path} untouched");
    } else {
        std::fs::write(path, &out).expect("write BENCH_serve.json");
        println!("wrote {path}");
    }

    println!(
        "http efficiency: {efficiency:.2} of in-process ({best_rows_per_s:.0} vs \
         {inprocess_rows_per_s:.0} rows/s, floor {MIN_HTTP_EFFICIENCY})"
    );
    if efficiency < MIN_HTTP_EFFICIENCY {
        eprintln!(
            "REGRESSION: HTTP serving reaches only {efficiency:.2} of the in-process \
             sampling throughput (floor {MIN_HTTP_EFFICIENCY})"
        );
        std::process::exit(1);
    }

    // Overload gates: the admission gate must actually shed under 4x
    // oversubscription, some requests must still get through, and
    // shedding must keep the tail bounded — p99 across *all* overload
    // responses may not exceed 25x the p99 of the fully-admitted run.
    // (Without shedding, the excess queues and the tail grows with the
    // queue; 25x is generous enough to absorb host-speed noise.)
    let p99_bound_ms = 25.0 * loaded_p99_ms.max(1.0);
    if admitted == 0 || shed == 0 {
        eprintln!(
            "REGRESSION: overload run expected both admissions and sheds, \
             got {admitted} admitted / {shed} shed"
        );
        std::process::exit(1);
    }
    if overload_p99 > p99_bound_ms {
        eprintln!(
            "REGRESSION: overload p99 {overload_p99:.2}ms exceeds bound {p99_bound_ms:.2}ms \
             (25x loaded p99 {loaded_p99_ms:.2}ms) — shedding is not keeping the tail bounded"
        );
        std::process::exit(1);
    }
}
