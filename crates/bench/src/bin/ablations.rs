//! Runs the ablation studies (margin method, record sampling, PD-repair
//! frequency) that back the design choices documented in DESIGN.md and
//! EXPERIMENTS.md.

use dpcopula_bench::experiments::{
    emit, run_ablation_margins, run_ablation_pd_repair, run_ablation_rank_correlation,
    run_ablation_sampling,
};
use dpcopula_bench::params::ExperimentParams;

fn main() {
    let params = ExperimentParams::from_env();
    println!("running ablations with {params:?}");
    emit(&run_ablation_pd_repair(&params));
    emit(&run_ablation_sampling(&params));
    emit(&run_ablation_rank_correlation(&params));
    emit(&run_ablation_margins(&params));
}
