//! Runs the complete evaluation battery — every table and figure of the
//! paper — and writes one CSV per artefact under `results/`.
//!
//! Environment knobs: `QUICK=1` (smoke-test scale), `RUNS=<r>`,
//! `QUERIES=<q>`, `RESULTS_DIR=<dir>`.

use dpcopula_bench::experiments::{
    emit, run_ablation_margins, run_ablation_pd_repair, run_ablation_rank_correlation,
    run_ablation_sampling, run_fig03, run_fig05, run_fig06, run_fig07, run_fig08, run_fig09,
    run_fig10, run_fig11, run_table02,
};
use dpcopula_bench::params::ExperimentParams;
use obskit::Stopwatch;

fn main() {
    let params = ExperimentParams::from_env();
    println!("running full battery with {params:?}");
    let total = Stopwatch::start();

    type Stage = (
        &'static str,
        fn(&ExperimentParams) -> Vec<dpcopula_bench::Table>,
    );
    let stages: Vec<Stage> = vec![
        ("table 2 (dataset domains)", run_table02),
        ("figure 3 (copula vs margins)", run_fig03),
        ("figure 5 (budget ratio k)", run_fig05),
        ("figure 8 (query range size)", run_fig08),
        ("figure 10 (dimensionality)", run_fig10),
        ("figure 9 (marginal distributions)", run_fig09),
        ("figure 6 (kendall vs mle)", run_fig06),
        ("figure 7 (census datasets)", run_fig07),
        ("figure 11 (scalability)", run_fig11),
        ("ablation: PD repair frequency", run_ablation_pd_repair),
        ("ablation: record sampling", run_ablation_sampling),
        ("ablation: rank correlation", run_ablation_rank_correlation),
        ("ablation: margin methods", run_ablation_margins),
    ];
    for (name, run) in stages {
        println!("\n########## {name} ##########");
        let t0 = Stopwatch::start();
        let tables = run(&params);
        emit(&tables);
        println!("{name}: {:.1?}", t0.elapsed());
    }
    println!("\nfull battery finished in {:.1?}", total.elapsed());
}
