//! Figure 7: relative error vs privacy budget on the (simulated) real
//! datasets.
//!
//! (a) US census, 4 attributes (Table 2a), sanity bound `s = 0.05% * n`;
//!     all five methods.
//! (b) Brazil census, 8 attributes (Table 2b), `s = 10`; DPCopula, PSD
//!     and FP. (The Brazil domain space is ~1.3 * 10^12 cells: P-HP's
//!     materialised grid and Privelet+'s per-query boundary tensor are
//!     infeasible there — consistent with the paper, which notes methods
//!     with histogram inputs cannot run at such domain sizes.)
//!
//! Expected shape: DPCopula lowest everywhere; the gap to the histogram
//! methods widens as epsilon shrinks; DPCopula is robust across epsilon.

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate;
use datagen::census::{brazil_census, us_census, BRAZIL_CENSUS_RECORDS, US_CENSUS_RECORDS};
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// The swept privacy budgets.
pub const EPSILONS: [f64; 4] = [0.1, 0.25, 0.5, 1.0];

fn census_records(full: usize) -> usize {
    if std::env::var("QUICK").map(|v| v == "1").unwrap_or(false) {
        full / 10
    } else {
        full
    }
}

/// Runs both panels and returns their tables.
pub fn run_fig07(params: &ExperimentParams) -> Vec<Table> {
    let runs = params.runs.min(3); // P-HP on the 10^8-cell grid is heavy
    let mut tables = Vec::new();

    // Panel (a): US census.
    {
        let n = census_records(US_CENSUS_RECORDS);
        let data = us_census(n, 0x05);
        let sanity = 0.0005 * n as f64;
        let mut rng = StdRng::seed_from_u64(0xf17a);
        let workload = Workload::random(&data.domains(), params.queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let methods = [
            Method::DpCopulaKendall,
            Method::Psd,
            Method::PriveletPlus,
            Method::Fp,
            Method::Php,
        ];
        let mut t = Table::new(
            "fig07a_us_census",
            &["epsilon", "DPCopula", "PSD", "Privelet+", "FP", "P-HP"],
        );
        for &eps in &EPSILONS {
            let mut row = vec![eps.to_string()];
            for &method in &methods {
                let out = evaluate(
                    method,
                    data.columns(),
                    &data.domains(),
                    eps,
                    params.k_ratio,
                    &workload,
                    &truth,
                    sanity,
                    runs,
                    0x07a0,
                );
                println!(
                    "fig07a: eps={eps} {} -> {:.4}",
                    method.name(),
                    out.errors.mean_relative
                );
                row.push(fmt(out.errors.mean_relative));
            }
            t.push_row(row);
        }
        tables.push(t);
    }

    // Panel (b): Brazil census.
    {
        let n = census_records(BRAZIL_CENSUS_RECORDS);
        let data = brazil_census(n, 0x0b);
        let sanity = 10.0;
        let mut rng = StdRng::seed_from_u64(0xf17b);
        let workload = Workload::random(&data.domains(), params.queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let methods = [Method::DpCopulaKendall, Method::Psd, Method::Fp];
        let mut t = Table::new(
            "fig07b_brazil_census",
            &["epsilon", "DPCopula", "PSD", "FP"],
        );
        for &eps in &EPSILONS {
            let mut row = vec![eps.to_string()];
            for &method in &methods {
                let out = evaluate(
                    method,
                    data.columns(),
                    &data.domains(),
                    eps,
                    params.k_ratio,
                    &workload,
                    &truth,
                    sanity,
                    runs,
                    0x07b0,
                );
                println!(
                    "fig07b: eps={eps} {} -> {:.4}",
                    method.name(),
                    out.errors.mean_relative
                );
                row.push(fmt(out.errors.mean_relative));
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}
