//! Table 2: domain sizes of the (simulated) real datasets — verifies the
//! generators reproduce the paper's attribute inventory exactly.

use crate::report::Table;
use datagen::census::{brazil_census, us_census};

/// Emits Table 2(a) and 2(b).
pub fn run_table02(_params: &crate::params::ExperimentParams) -> Vec<Table> {
    let us = us_census(100, 0);
    let mut ta = Table::new("table02a_us_domains", &["attribute", "domain_size"]);
    for a in us.attributes() {
        ta.push_row(vec![a.name.clone(), a.domain.to_string()]);
    }

    let br = brazil_census(100, 0);
    let mut tb = Table::new("table02b_brazil_domains", &["attribute", "domain_size"]);
    for a in br.attributes() {
        tb.push_row(vec![a.name.clone(), a.domain.to_string()]);
    }
    vec![ta, tb]
}
