//! Figure 9: relative error vs marginal distribution.
//!
//! 8-D synthetic data with Gaussian dependence and margins drawn from a
//! Gaussian, uniform, or Zipf distribution, over several epsilon values.
//! Expected shape: DPCopula best under every margin; PSD degrades on the
//! skewed (Zipf) margins; DPCopula does *better* on uniform/Zipf than on
//! Gaussian (EFPA likes flat or compressible margins).

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// The swept privacy budgets.
pub const EPSILONS: [f64; 3] = [0.1, 0.5, 1.0];

/// The compared margins (name, kind).
pub fn margins() -> [(&'static str, MarginKind); 3] {
    [
        ("gaussian", MarginKind::Gaussian),
        ("uniform", MarginKind::Uniform),
        ("zipf", MarginKind::Zipf(1.2)),
    ]
}

/// Runs the experiment; one table per margin family.
pub fn run_fig09(params: &ExperimentParams) -> Vec<Table> {
    let mut tables = Vec::new();
    for (name, kind) in margins() {
        let data = SyntheticSpec {
            records: params.records,
            dims: params.dims,
            domain: params.domain,
            margin: kind,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(0xf19);
        let workload = Workload::random(&data.domains(), params.queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let mut t = Table::new(
            format!("fig09_{name}_margins"),
            &["epsilon", "DPCopula", "PSD"],
        );
        for &eps in &EPSILONS {
            let mut row = vec![eps.to_string()];
            for method in [Method::DpCopulaKendall, Method::Psd] {
                let out = evaluate(
                    method,
                    data.columns(),
                    &data.domains(),
                    eps,
                    params.k_ratio,
                    &workload,
                    &truth,
                    params.sanity,
                    params.runs,
                    0x0900,
                );
                println!(
                    "fig09[{name}]: eps={eps} {} -> {:.4}",
                    method.name(),
                    out.errors.mean_relative
                );
                row.push(fmt(out.errors.mean_relative));
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}
