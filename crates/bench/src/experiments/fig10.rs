//! Figure 10: query accuracy vs dimensionality.
//!
//! Gaussian-margin synthetic data, `m in {2,4,6,8}` with |A_i| = 1000
//! (domain spaces 10^6 to 10^24), a fixed 50 000 records — increasingly
//! sparse. Expected shape: 2-D lowest error; both methods degrade with
//! `m`; DPCopula below PSD with a widening gap.

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// The swept dimensionalities.
pub const DIMS: [usize; 4] = [2, 4, 6, 8];

/// Runs the experiment; returns relative- and absolute-error tables.
pub fn run_fig10(params: &ExperimentParams) -> Vec<Table> {
    let mut rel = Table::new("fig10a_dimensionality_relative", &["m", "DPCopula", "PSD"]);
    let mut abs = Table::new("fig10b_dimensionality_absolute", &["m", "DPCopula", "PSD"]);
    for &m in &DIMS {
        let data = SyntheticSpec {
            records: params.records,
            dims: m,
            domain: params.domain,
            margin: MarginKind::Gaussian,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(0xf20 + m as u64);
        let workload = Workload::random(&data.domains(), params.queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let mut rel_row = vec![m.to_string()];
        let mut abs_row = vec![m.to_string()];
        for method in [Method::DpCopulaKendall, Method::Psd] {
            let out = evaluate(
                method,
                data.columns(),
                &data.domains(),
                params.epsilon,
                params.k_ratio,
                &workload,
                &truth,
                params.sanity,
                params.runs,
                0x1000 + m as u64,
            );
            println!(
                "fig10: m={m} {} -> rel {:.4} abs {:.2}",
                method.name(),
                out.errors.mean_relative,
                out.errors.mean_absolute
            );
            rel_row.push(fmt(out.errors.mean_relative));
            abs_row.push(fmt(out.errors.mean_absolute));
        }
        rel.push_row(rel_row);
        abs.push_row(abs_row);
    }
    vec![rel, abs]
}
