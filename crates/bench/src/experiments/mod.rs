//! One function per paper table/figure. Each returns the result tables it
//! produced (already printed and saved to `results/`), so `all_experiments`
//! can chain them and the integration tests can assert on their shapes.

mod ablation;
mod fig03;
mod fig05;
mod fig06;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod table02;

pub use ablation::{
    run_ablation_margins, run_ablation_pd_repair, run_ablation_rank_correlation,
    run_ablation_sampling,
};
pub use fig03::run_fig03;
pub use fig05::run_fig05;
pub use fig06::run_fig06;
pub use fig07::run_fig07;
pub use fig08::run_fig08;
pub use fig09::run_fig09;
pub use fig10::run_fig10;
pub use fig11::run_fig11;
pub use table02::run_table02;

use crate::report::Table;

/// Prints and saves every table, logging the CSV paths.
pub fn emit(tables: &[Table]) {
    for t in tables {
        t.print();
        match t.save_csv() {
            Ok(path) => println!("saved {}", path.display()),
            Err(e) => eprintln!("could not save {}: {e}", t.name),
        }
    }
}
