//! Figure 5: relative error vs the budget ratio `k = eps1/eps2`.
//!
//! Paper setup: 2-D synthetic data, random count queries, `epsilon = 1.0`,
//! `k` swept over fractions and multiples of 1. Expected shape: error
//! falls sharply while `k < 1`, then plateaus — margins deserve most of
//! the budget, and the method is insensitive to `k` once `k > 1`.

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// The swept `k` values.
pub const K_VALUES: [f64; 11] = [
    1.0 / 32.0,
    1.0 / 16.0,
    1.0 / 8.0,
    1.0 / 4.0,
    1.0 / 2.0,
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
];

/// Runs the experiment and returns its table.
pub fn run_fig05(params: &ExperimentParams) -> Vec<Table> {
    let data = SyntheticSpec {
        records: params.records,
        dims: 2,
        domain: params.domain,
        margin: MarginKind::Gaussian,
        ..Default::default()
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(0xf15);
    let workload = Workload::random(&data.domains(), params.queries, &mut rng);
    let truth = workload.true_counts(data.columns());

    let mut table = Table::new("fig05_ratio_k", &["k", "relative_error"]);
    for &k in &K_VALUES {
        let out = evaluate(
            Method::DpCopulaKendall,
            data.columns(),
            &data.domains(),
            params.epsilon,
            k,
            &workload,
            &truth,
            params.sanity,
            params.runs,
            0x5105,
        );
        println!("fig05: k={k:.4} -> rel err {:.4}", out.errors.mean_relative);
        table.push_row(vec![format!("{k}"), fmt(out.errors.mean_relative)]);
    }
    vec![table]
}
