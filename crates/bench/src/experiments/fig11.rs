//! Figure 11: time efficiency.
//!
//! (a) wall time vs cardinality `n` on the 4-D (simulated) US census —
//!     expected linear in `n` for every method, PSD above DPCopula;
//! (b) wall time vs dimensionality at `n = 50 000` — DPCopula grows
//!     ~quadratically with `m` (pairwise coefficients) but stays
//!     acceptable at 8-D.
//!
//! Timing covers one full publish-plus-answer-the-workload cycle per
//! method (the lazy Privelet+ defers its transform work to query time, so
//! publication alone would not be comparable; see EXPERIMENTS.md).

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate_timed;
use datagen::census::us_census;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Cardinalities swept in panel (a).
pub const CARDINALITIES: [usize; 5] = [25_000, 50_000, 100_000, 200_000, 400_000];

/// Runs both panels.
pub fn run_fig11(params: &ExperimentParams) -> Vec<Table> {
    // Timing runs are serial and single-shot; keep the workload small so
    // the truth scan does not dominate.
    let queries = params.queries.min(200);
    let quick = std::env::var("QUICK").map(|v| v == "1").unwrap_or(false);

    // Panel (a): time vs n on 4-D census data.
    let mut ta = Table::new(
        "fig11a_time_vs_n",
        &["n", "DPCopula_s", "PSD_s", "PriveletPlus_s"],
    );
    let cards: Vec<usize> = if quick {
        vec![10_000, 25_000, 50_000]
    } else {
        CARDINALITIES.to_vec()
    };
    for &n in &cards {
        let data = us_census(n, 0x11a);
        let mut rng = StdRng::seed_from_u64(0xf21);
        let workload = Workload::random(&data.domains(), queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let mut row = vec![n.to_string()];
        for method in [Method::DpCopulaKendall, Method::Psd, Method::PriveletPlus] {
            let out = evaluate_timed(
                method,
                data.columns(),
                &data.domains(),
                params.epsilon,
                params.k_ratio,
                &workload,
                &truth,
                params.sanity,
                1,
                0x11a0,
            );
            println!("fig11a: n={n} {} -> {:.3}s", method.name(), out.mean_time.as_secs_f64());
            row.push(fmt(out.mean_time.as_secs_f64()));
        }
        ta.push_row(row);
    }

    // Panel (b): time vs m on synthetic data.
    let mut tb = Table::new("fig11b_time_vs_m", &["m", "DPCopula_s", "PSD_s"]);
    for m in [2usize, 4, 6, 8] {
        let data = SyntheticSpec {
            records: params.records,
            dims: m,
            domain: params.domain,
            margin: MarginKind::Gaussian,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(0xf22);
        let workload = Workload::random(&data.domains(), queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let mut row = vec![m.to_string()];
        for method in [Method::DpCopulaKendall, Method::Psd] {
            let out = evaluate_timed(
                method,
                data.columns(),
                &data.domains(),
                params.epsilon,
                params.k_ratio,
                &workload,
                &truth,
                params.sanity,
                1,
                0x11b0,
            );
            println!("fig11b: m={m} {} -> {:.3}s", method.name(), out.mean_time.as_secs_f64());
            row.push(fmt(out.mean_time.as_secs_f64()));
        }
        tb.push_row(row);
    }
    vec![ta, tb]
}
