//! Figure 11: time efficiency.
//!
//! (a) wall time vs cardinality `n` on the 4-D (simulated) US census —
//!     expected linear in `n` for every method, PSD above DPCopula;
//! (b) wall time vs dimensionality at `n = 50 000` — DPCopula grows
//!     ~quadratically with `m` (pairwise coefficients) but stays
//!     acceptable at 8-D.
//!
//! Timing covers one full publish-plus-answer-the-workload cycle per
//! method (the lazy Privelet+ defers its transform work to query time, so
//! publication alone would not be comparable; see EXPERIMENTS.md).

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate_timed;
use datagen::census::us_census;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::{DpCopula, DpCopulaConfig, EngineOptions};
use dpmech::Epsilon;
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Cardinalities swept in panel (a).
pub const CARDINALITIES: [usize; 5] = [25_000, 50_000, 100_000, 200_000, 400_000];

/// Runs both panels.
pub fn run_fig11(params: &ExperimentParams) -> Vec<Table> {
    // Timing runs are serial and single-shot; keep the workload small so
    // the truth scan does not dominate.
    let queries = params.queries.min(200);
    let quick = std::env::var("QUICK").map(|v| v == "1").unwrap_or(false);

    // Panel (a): time vs n on 4-D census data.
    let mut ta = Table::new(
        "fig11a_time_vs_n",
        &["n", "DPCopula_s", "PSD_s", "PriveletPlus_s"],
    );
    let cards: Vec<usize> = if quick {
        vec![10_000, 25_000, 50_000]
    } else {
        CARDINALITIES.to_vec()
    };
    for &n in &cards {
        let data = us_census(n, 0x11a);
        let mut rng = StdRng::seed_from_u64(0xf21);
        let workload = Workload::random(&data.domains(), queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let mut row = vec![n.to_string()];
        for method in [Method::DpCopulaKendall, Method::Psd, Method::PriveletPlus] {
            let out = evaluate_timed(
                method,
                data.columns(),
                &data.domains(),
                params.epsilon,
                params.k_ratio,
                &workload,
                &truth,
                params.sanity,
                1,
                0x11a0,
            );
            println!(
                "fig11a: n={n} {} -> {:.3}s",
                method.name(),
                out.mean_time.as_secs_f64()
            );
            row.push(fmt(out.mean_time.as_secs_f64()));
        }
        ta.push_row(row);
    }

    // Panel (b): time vs m on synthetic data.
    let mut tb = Table::new("fig11b_time_vs_m", &["m", "DPCopula_s", "PSD_s"]);
    for m in [2usize, 4, 6, 8] {
        let data = SyntheticSpec {
            records: params.records,
            dims: m,
            domain: params.domain,
            margin: MarginKind::Gaussian,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(0xf22);
        let workload = Workload::random(&data.domains(), queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let mut row = vec![m.to_string()];
        for method in [Method::DpCopulaKendall, Method::Psd] {
            let out = evaluate_timed(
                method,
                data.columns(),
                &data.domains(),
                params.epsilon,
                params.k_ratio,
                &workload,
                &truth,
                params.sanity,
                1,
                0x11b0,
            );
            println!(
                "fig11b: m={m} {} -> {:.3}s",
                method.name(),
                out.mean_time.as_secs_f64()
            );
            row.push(fmt(out.mean_time.as_secs_f64()));
        }
        tb.push_row(row);
    }

    // Panel (c) — extension beyond the paper: per-stage wall time of the
    // staged engine on fig11-sized census data at 1/2/4 workers. The
    // determinism contract guarantees the *released bytes* are identical
    // across rows; only the timings move.
    let mut tc = Table::new(
        "fig11c_stage_times",
        &[
            "workers",
            "budget_plan_s",
            "margins_s",
            "correlation_s",
            "pd_repair_s",
            "sampling_s",
            "total_s",
        ],
    );
    let n = if quick { 25_000 } else { 100_000 };
    let data = us_census(n, 0x11c);
    let config = DpCopulaConfig::kendall(
        Epsilon::new(params.epsilon).expect("experiment epsilon is positive"),
    )
    .with_k_ratio(params.k_ratio);
    for workers in [1usize, 2, 4] {
        let (_, report) = DpCopula::new(config)
            .synthesize_staged(
                data.columns(),
                &data.domains(),
                0x11c0,
                &EngineOptions::with_workers(workers),
            )
            .expect("census synthesis succeeds");
        let t = report.timings;
        println!(
            "fig11c: workers={workers} total={:.3}s correlation={:.3}s",
            t.total().as_secs_f64(),
            t.correlation.as_secs_f64()
        );
        let mut row = vec![workers.to_string()];
        for (_, d) in t.stages() {
            row.push(fmt(d.as_secs_f64()));
        }
        row.push(fmt(t.total().as_secs_f64()));
        tc.push_row(row);
    }

    vec![ta, tb, tc]
}
