//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **margins** — which 1-D DP histogram algorithm should publish the
//!   marginal histograms (the paper picks EFPA; our harness picks P-HP —
//!   this table is the evidence);
//! * **sampling** — Kendall's tau on all records vs the paper's
//!   `n_hat > 50 m (m-1)/eps2` record sample (accuracy cost of the
//!   speed-up);
//! * **pd-repair** — how often the noisy `sin(pi/2 tau)` matrix needs the
//!   eigenvalue repair, as a function of epsilon (the paper claims it is
//!   rare for `eps2 >= 0.001`).

use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use datagen::census::us_census;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::hybrid::{HybridConfig, HybridSynthesizer};
use dpcopula::kendall::SamplingStrategy;
use dpcopula::synthesizer::{CorrelationMethod, DpCopulaConfig, MarginMethod};
use dpmech::Epsilon;
use mathkit::cholesky::is_positive_definite;
use mathkit::correlation::clamp_to_correlation;
use mathkit::Matrix;
use queryeval::{ErrorSummary, Workload};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Margin-method ablation on the simulated US census.
pub fn run_ablation_margins(params: &ExperimentParams) -> Vec<Table> {
    let n = 100_000;
    let data = us_census(n, 0x05);
    let sanity = 0.0005 * n as f64;
    let mut rng = StdRng::seed_from_u64(0xab1a);
    let workload = Workload::random(&data.domains(), params.queries.min(500), &mut rng);
    let truth = workload.true_counts(data.columns());
    let runs = params.runs.min(3);

    let mut t = Table::new(
        "ablation_margins",
        &[
            "epsilon",
            "EFPA",
            "EFPA-DCT",
            "Identity",
            "Privelet",
            "P-HP",
            "Hierarchical",
            "NoiseFirst",
        ],
    );
    for eps in [0.1, 0.5, 1.0] {
        let mut row = vec![eps.to_string()];
        for margin in [
            MarginMethod::Efpa,
            MarginMethod::EfpaDct,
            MarginMethod::Identity,
            MarginMethod::Privelet,
            MarginMethod::Php,
            MarginMethod::Hierarchical,
            MarginMethod::NoiseFirst,
        ] {
            let mut rel = 0.0;
            for s in 0..runs as u64 {
                let mut rng = StdRng::seed_from_u64(0xab00 + s);
                let base = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap())
                    .with_k_ratio(params.k_ratio)
                    .with_margin(margin);
                let out = HybridSynthesizer::new(HybridConfig::new(base))
                    .synthesize(data.columns(), &data.domains(), &mut rng)
                    .expect("synthesis failed");
                let answers = workload.estimate_with(|q| q.count(&out.columns));
                rel += ErrorSummary::from_answers(&answers, &truth, sanity).mean_relative;
            }
            let rel = rel / runs as f64;
            println!("ablation_margins: eps={eps} {margin:?} -> {rel:.4}");
            row.push(fmt(rel));
        }
        t.push_row(row);
    }
    vec![t]
}

/// Record-sampling ablation: full Kendall vs the paper's sampled variant.
pub fn run_ablation_sampling(params: &ExperimentParams) -> Vec<Table> {
    let data = SyntheticSpec {
        records: params.records,
        dims: 4,
        domain: params.domain,
        margin: MarginKind::Gaussian,
        ..Default::default()
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(0xab2a);
    let workload = Workload::random(&data.domains(), params.queries.min(500), &mut rng);
    let truth = workload.true_counts(data.columns());
    let runs = params.runs.min(3);

    let mut t = Table::new(
        "ablation_sampling",
        &[
            "epsilon",
            "full_rel_err",
            "sampled_rel_err",
            "full_s",
            "sampled_s",
        ],
    );
    for eps in [0.1, 1.0] {
        let mut cells = vec![eps.to_string()];
        let mut times = Vec::new();
        for strategy in [SamplingStrategy::Full, SamplingStrategy::Auto] {
            let mut rel = 0.0;
            let t0 = obskit::Stopwatch::start();
            for s in 0..runs as u64 {
                let mut rng = StdRng::seed_from_u64(0xab20 + s);
                let mut base = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap())
                    .with_k_ratio(params.k_ratio)
                    .with_margin(MarginMethod::Php);
                base.method = CorrelationMethod::Kendall(strategy);
                let out = dpcopula::DpCopula::new(base)
                    .synthesize(data.columns(), &data.domains(), &mut rng)
                    .expect("synthesis failed");
                let answers = workload.estimate_with(|q| q.count(&out.columns));
                rel +=
                    ErrorSummary::from_answers(&answers, &truth, sanity_of(params)).mean_relative;
            }
            let dt = t0.elapsed().as_secs_f64() / runs as f64;
            let rel = rel / runs as f64;
            println!("ablation_sampling: eps={eps} {strategy:?} -> {rel:.4} in {dt:.2}s");
            cells.push(fmt(rel));
            times.push(fmt(dt));
        }
        cells.extend(times);
        t.push_row(cells);
    }
    vec![t]
}

fn sanity_of(params: &ExperimentParams) -> f64 {
    params.sanity
}

/// Kendall vs Spearman rank correlation inside DPCopula — quantifying the
/// paper's §3.2 preference (Kendall's sensitivity is `4/(n+1)` against
/// Spearman's `30/(n-1)` bound).
pub fn run_ablation_rank_correlation(params: &ExperimentParams) -> Vec<Table> {
    let data = SyntheticSpec {
        records: params.records,
        dims: 4,
        domain: params.domain,
        margin: MarginKind::Gaussian,
        ..Default::default()
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(0xab4a);
    let workload = Workload::random(&data.domains(), params.queries.min(500), &mut rng);
    let truth = workload.true_counts(data.columns());
    let runs = params.runs.min(3);

    let mut t = Table::new(
        "ablation_rank_correlation",
        &["epsilon", "kendall_rel_err", "spearman_rel_err"],
    );
    for eps in [0.1, 0.5, 1.0] {
        let mut row = vec![eps.to_string()];
        for method in [
            CorrelationMethod::Kendall(SamplingStrategy::Full),
            CorrelationMethod::Spearman,
        ] {
            let mut rel = 0.0;
            for s in 0..runs as u64 {
                let mut rng = StdRng::seed_from_u64(0xab40 + s);
                let mut base = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap())
                    .with_k_ratio(params.k_ratio)
                    .with_margin(MarginMethod::Php);
                base.method = method;
                let out = dpcopula::DpCopula::new(base)
                    .synthesize(data.columns(), &data.domains(), &mut rng)
                    .expect("synthesis failed");
                let answers = workload.estimate_with(|q| q.count(&out.columns));
                rel += ErrorSummary::from_answers(&answers, &truth, params.sanity).mean_relative;
            }
            let rel = rel / runs as f64;
            println!("ablation_rank_correlation: eps={eps} {method:?} -> {rel:.4}");
            row.push(fmt(rel));
        }
        t.push_row(row);
    }
    vec![t]
}

/// PD-repair frequency: how often the raw noisy correlation matrix is
/// indefinite, by epsilon and dimensionality.
pub fn run_ablation_pd_repair(_params: &ExperimentParams) -> Vec<Table> {
    let mut t = Table::new("ablation_pd_repair", &["m", "eps2", "indefinite_fraction"]);
    let mut rng = StdRng::seed_from_u64(0xab3a);
    for m in [4usize, 8] {
        let data = SyntheticSpec {
            records: 10_000,
            dims: m,
            domain: 100,
            margin: MarginKind::Gaussian,
            ..Default::default()
        }
        .generate();
        for eps2 in [0.001, 0.01, 0.1] {
            let trials = 40;
            let mut indefinite = 0;
            for _ in 0..trials {
                // Raw noisy matrix before repair: recompute the pairwise
                // taus with noise and map through sin, then test.
                let pairs = m * (m - 1) / 2;
                let eps_pair = Epsilon::new(eps2 / pairs as f64).unwrap();
                let mut p = Matrix::identity(m);
                for i in 0..m {
                    for j in (i + 1)..m {
                        let tau = dpcopula::kendall::dp_kendall_tau(
                            &data.columns()[i],
                            &data.columns()[j],
                            eps_pair,
                            &mut rng,
                        );
                        let r = (std::f64::consts::FRAC_PI_2 * tau).sin();
                        p[(i, j)] = r;
                        p[(j, i)] = r;
                    }
                }
                clamp_to_correlation(&mut p);
                if !is_positive_definite(&p) {
                    indefinite += 1;
                }
            }
            let frac = f64::from(indefinite) / f64::from(trials);
            println!("ablation_pd_repair: m={m} eps2={eps2} -> {frac:.2}");
            t.push_row(vec![m.to_string(), eps2.to_string(), fmt(frac)]);
        }
    }
    vec![t]
}
