//! Figure 8: query accuracy vs query range size.
//!
//! 2-D synthetic data, `epsilon = 0.1` (small, "to better present the
//! performance difference"), queries with a *fixed* range volume per
//! sweep point. Expected shape: relative error falls and absolute error
//! rises with the range size; DPCopula < PSD < P-HP; cell-sized queries
//! show small average relative error (most answers are zero and exact).

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Swept range volumes as fractions of the full (10^6-cell) domain.
pub const VOLUME_FRACTIONS: [f64; 6] = [1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.25];

/// The figure's privacy budget.
pub const FIG08_EPSILON: f64 = 0.1;

/// Runs the experiment and returns relative- and absolute-error tables.
pub fn run_fig08(params: &ExperimentParams) -> Vec<Table> {
    let data = SyntheticSpec {
        records: params.records,
        dims: 2,
        domain: params.domain,
        margin: MarginKind::Gaussian,
        ..Default::default()
    }
    .generate();
    let methods = [Method::DpCopulaKendall, Method::Psd, Method::Php];

    let mut rel = Table::new(
        "fig08a_range_size_relative",
        &["volume_fraction", "DPCopula", "PSD", "P-HP"],
    );
    let mut abs = Table::new(
        "fig08b_range_size_absolute",
        &["volume_fraction", "DPCopula", "PSD", "P-HP"],
    );

    for &vol in &VOLUME_FRACTIONS {
        let mut rng = StdRng::seed_from_u64(0xf18);
        let workload = Workload::random_with_volume(&data.domains(), vol, params.queries, &mut rng);
        let truth = workload.true_counts(data.columns());
        let mut rel_row = vec![format!("{vol}")];
        let mut abs_row = vec![format!("{vol}")];
        for &method in &methods {
            let out = evaluate(
                method,
                data.columns(),
                &data.domains(),
                FIG08_EPSILON,
                params.k_ratio,
                &workload,
                &truth,
                params.sanity,
                params.runs,
                0x08a0,
            );
            println!(
                "fig08: vol={vol} {} -> rel {:.4} abs {:.2}",
                method.name(),
                out.errors.mean_relative,
                out.errors.mean_absolute
            );
            rel_row.push(fmt(out.errors.mean_relative));
            abs_row.push(fmt(out.errors.mean_absolute));
        }
        rel.push_row(rel_row);
        abs.push_row(abs_row);
    }
    vec![rel, abs]
}
