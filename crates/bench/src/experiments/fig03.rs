//! Figure 3: Gaussian copula vs multivariate distribution.
//!
//! The paper's Figure 3 shows scatter plots of two bivariate Gaussian
//! copulas with the *same* correlation but different margins
//! (exponential+gamma and uniform+t), illustrating that the dependence
//! can be modelled independently of the margins. This experiment exports
//! the scatter data as CSVs and verifies the invariance quantitatively:
//! the rank correlation (Kendall's tau) must agree across margin choices
//! while the Pearson correlation and joint shapes differ.

use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use mathkit::correlation::equicorrelation;
use mathkit::dist::{Continuous, Exponential, Gamma, MultivariateNormal, StudentT, Uniform};
use mathkit::special::norm_cdf;
use mathkit::stats::{pearson, ranks};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// The shared Gaussian-dependence correlation of Figure 3.
pub const FIG03_RHO: f64 = 0.7;

fn tau_from(xs: &[f64], ys: &[f64]) -> f64 {
    // Kendall's tau on continuous data via ranks (no ties).
    let rx = ranks(xs);
    let ry = ranks(ys);
    let n = xs.len();
    let mut s = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let a = (rx[i] - rx[j]).signum();
            let b = (ry[i] - ry[j]).signum();
            s += (a * b) as i64;
        }
    }
    s as f64 / ((n * (n - 1) / 2) as f64)
}

/// Runs the experiment: one scatter CSV per margin pair, one invariance
/// table.
pub fn run_fig03(_params: &ExperimentParams) -> Vec<Table> {
    let n = 2_000usize;
    let mvn = MultivariateNormal::new(&equicorrelation(2, FIG03_RHO)).unwrap();
    let mut rng = StdRng::seed_from_u64(0xf03);
    let z = mvn.sample_columns(&mut rng, n);
    // Shared copula sample (u1, u2) — panels (a) and (c) of Fig 3.
    let u1: Vec<f64> = z[0].iter().map(|&v| norm_cdf(v)).collect();
    let u2: Vec<f64> = z[1].iter().map(|&v| norm_cdf(v)).collect();

    // Panel (b): exponential + gamma margins.
    let expo = Exponential::new(1.0).unwrap();
    let gamma = Gamma::new(2.0, 1.5).unwrap();
    let xb: Vec<f64> = u1
        .iter()
        .map(|&u| expo.quantile(u.clamp(1e-12, 1.0 - 1e-12)))
        .collect();
    let yb: Vec<f64> = u2
        .iter()
        .map(|&u| gamma.quantile(u.clamp(1e-12, 1.0 - 1e-12)))
        .collect();

    // Panel (d): uniform + t margins.
    let unif = Uniform::new(0.0, 1.0).unwrap();
    let t3 = StudentT::new(3.0).unwrap();
    let xd: Vec<f64> = u1.iter().map(|&u| unif.quantile(u)).collect();
    let yd: Vec<f64> = u2
        .iter()
        .map(|&u| t3.quantile(u.clamp(1e-9, 1.0 - 1e-9)))
        .collect();

    // Scatter CSVs.
    let mut scatter_b = Table::new("fig03b_exp_gamma_scatter", &["x", "y"]);
    let mut scatter_d = Table::new("fig03d_uniform_t_scatter", &["x", "y"]);
    let mut scatter_copula = Table::new("fig03a_copula_scatter", &["u1", "u2"]);
    for i in 0..n.min(1_000) {
        scatter_copula.push_row(vec![fmt(u1[i]), fmt(u2[i])]);
        scatter_b.push_row(vec![fmt(xb[i]), fmt(yb[i])]);
        scatter_d.push_row(vec![fmt(xd[i]), fmt(yd[i])]);
    }

    // The invariance table: tau identical across margins, Pearson not.
    let mut inv = Table::new("fig03_invariance", &["margins", "kendall_tau", "pearson_r"]);
    let sub = 600.min(n); // tau is O(n^2); a subsample is plenty
    inv.push_row(vec![
        "copula (uniform,uniform)".into(),
        fmt(tau_from(&u1[..sub], &u2[..sub])),
        fmt(pearson(&u1, &u2)),
    ]);
    inv.push_row(vec![
        "exponential+gamma".into(),
        fmt(tau_from(&xb[..sub], &yb[..sub])),
        fmt(pearson(&xb, &yb)),
    ]);
    inv.push_row(vec![
        "uniform+t(3)".into(),
        fmt(tau_from(&xd[..sub], &yd[..sub])),
        fmt(pearson(&xd, &yd)),
    ]);
    let expect = 2.0 / std::f64::consts::PI * FIG03_RHO.asin();
    println!(
        "fig03: theoretical tau = {expect:.4} for rho = {FIG03_RHO}; all rows should match it"
    );
    vec![scatter_copula, scatter_b, scatter_d, inv]
}
