//! Figure 6: DPCopula-Kendall vs DPCopula-MLE.
//!
//! (a) relative error for random queries at `m in {2,4,6,8}` on large
//!     synthetic data (the paper uses n = 10^6 "considering the
//!     sensitivity of DPCopula-MLE" — MLE's subsample-and-aggregate needs
//!     many partitions);
//! (b) runtime of the two methods over the same sweep.
//!
//! Expected shape: Kendall at or below MLE's error everywhere (its
//! pairwise sensitivity `4/(n+1)` beats the `2/l` block diameter);
//! both runtimes grow ~quadratically in `m`, Kendall slightly above MLE.

use crate::methods::Method;
use crate::params::ExperimentParams;
use crate::report::{fmt, Table};
use crate::runner::evaluate_timed;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Records for this figure: the paper's 10^6 (QUICK mode: 10^5).
pub fn fig06_records() -> usize {
    if std::env::var("QUICK").map(|v| v == "1").unwrap_or(false) {
        100_000
    } else {
        1_000_000
    }
}

/// Runs the experiment and returns `(accuracy, runtime)` tables.
pub fn run_fig06(params: &ExperimentParams) -> Vec<Table> {
    let records = fig06_records();
    // Keep the workload modest: truth-scanning 10^6-record data per query
    // dominates otherwise and is not what the figure measures.
    let queries = params.queries.min(200);
    let runs = params.runs.min(3);

    let mut acc = Table::new(
        "fig06a_kendall_vs_mle_error",
        &["m", "kendall_rel_err", "mle_rel_err"],
    );
    let mut time = Table::new(
        "fig06b_kendall_vs_mle_time",
        &["m", "kendall_seconds", "mle_seconds"],
    );

    for m in [2usize, 4, 6, 8] {
        let data = SyntheticSpec {
            records,
            dims: m,
            domain: params.domain,
            margin: MarginKind::Gaussian,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(0xf16 + m as u64);
        let workload = Workload::random(&data.domains(), queries, &mut rng);
        let truth = workload.true_counts(data.columns());

        let kendall = evaluate_timed(
            Method::DpCopulaKendall,
            data.columns(),
            &data.domains(),
            params.epsilon,
            params.k_ratio,
            &workload,
            &truth,
            params.sanity,
            runs,
            0x6a + m as u64,
        );
        let mle = evaluate_timed(
            Method::DpCopulaMle,
            data.columns(),
            &data.domains(),
            params.epsilon,
            params.k_ratio,
            &workload,
            &truth,
            params.sanity,
            runs,
            0x6b + m as u64,
        );
        println!(
            "fig06: m={m} kendall err {:.4} ({:.2?}) | mle err {:.4} ({:.2?})",
            kendall.errors.mean_relative,
            kendall.mean_time,
            mle.errors.mean_relative,
            mle.mean_time
        );
        acc.push_row(vec![
            m.to_string(),
            fmt(kendall.errors.mean_relative),
            fmt(mle.errors.mean_relative),
        ]);
        time.push_row(vec![
            m.to_string(),
            fmt(kendall.mean_time.as_secs_f64()),
            fmt(mle.mean_time.as_secs_f64()),
        ]);
    }
    vec![acc, time]
}
