//! Console tables and CSV files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple result table: header plus string rows, printable and savable.
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier used for the CSV filename (e.g. `fig07a_us_census`).
    pub name: String,
    /// Column names.
    pub header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, header: &[&str]) -> Self {
        Self {
            name: name.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// The rows accumulated so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.header) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            line.clear();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Prints the table with its name as a heading.
    pub fn print(&self) {
        println!("\n== {} ==", self.name);
        print!("{}", self.render());
    }

    /// Saves the table as `results/<name>.csv` (relative to the workspace
    /// root or cwd) and returns the path.
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut body = self.header.join(",");
        body.push('\n');
        for row in &self.rows {
            body.push_str(&row.join(","));
            body.push('\n');
        }
        fs::write(&path, body)?;
        Ok(path)
    }
}

/// The output directory for experiment CSVs: `$RESULTS_DIR` or
/// `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a float with 4 significant decimals for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["method", "err"]);
        t.push_row(vec!["DPCopula".into(), "0.1".into()]);
        t.push_row(vec!["PSD".into(), "0.25".into()]);
        let s = t.render();
        assert!(s.contains("DPCopula"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345), "0.1235");
        assert_eq!(fmt(5.43219), "5.432");
        assert_eq!(fmt(1234.5), "1234.5");
    }
}
