//! Run-averaged evaluation of a method over a workload (the paper
//! averages 5 runs of 1000 queries), with optional wall-clock timing for
//! the scalability figures. Independent runs fan out through
//! [`parkit::par_map`], keyed by run index, so the averaged numbers are
//! identical at any worker count.

use crate::methods::Method;
use obskit::Stopwatch;
use queryeval::{ErrorSummary, Workload};
use std::time::Duration;

/// Result of an averaged evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Error summary averaged over runs.
    pub errors: ErrorSummary,
    /// Mean wall-clock time of one publish+answer cycle.
    pub mean_time: Duration,
}

/// Evaluates `method` on `columns` for `runs` independent releases and
/// averages the error metrics.
#[allow(clippy::too_many_arguments)] // experiment surface, mirrors Table 3
pub fn evaluate(
    method: Method,
    columns: &[Vec<u32>],
    domains: &[usize],
    eps: f64,
    k_ratio: f64,
    workload: &Workload,
    truth: &[f64],
    sanity: f64,
    runs: usize,
    base_seed: u64,
) -> EvalOutcome {
    assert!(runs > 0, "need at least one run");
    assert_eq!(
        truth.len(),
        workload.len(),
        "truth must pair with the workload"
    );

    // One task per run, fanned out through parkit; each run's seed is a
    // pure function of its index, so results never depend on scheduling.
    let seeds: Vec<u64> = (0..runs as u64)
        .map(|r| base_seed.wrapping_add(r * 7919))
        .collect();
    let results: Vec<(ErrorSummary, Duration)> =
        parkit::par_map(parkit::default_workers(), &seeds, |_, &seed| {
            let t0 = Stopwatch::start();
            let answers = method.answer_workload(columns, domains, eps, k_ratio, workload, seed);
            let dt = t0.elapsed();
            (ErrorSummary::from_answers(&answers, truth, sanity), dt)
        });

    let summaries: Vec<ErrorSummary> = results.iter().map(|(s, _)| *s).collect();
    let total: Duration = results.iter().map(|(_, d)| *d).sum();
    EvalOutcome {
        errors: ErrorSummary::average(&summaries),
        mean_time: total / runs as u32,
    }
}

/// Like [`evaluate`] but runs serially — for the timing figures, where
/// thread contention on 2 cores would distort wall-clock numbers.
#[allow(clippy::too_many_arguments)] // experiment surface, mirrors Table 3
pub fn evaluate_timed(
    method: Method,
    columns: &[Vec<u32>],
    domains: &[usize],
    eps: f64,
    k_ratio: f64,
    workload: &Workload,
    truth: &[f64],
    sanity: f64,
    runs: usize,
    base_seed: u64,
) -> EvalOutcome {
    assert!(runs > 0, "need at least one run");
    assert_eq!(
        truth.len(),
        workload.len(),
        "truth must pair with the workload"
    );
    let mut summaries = Vec::with_capacity(runs);
    let mut total = Duration::ZERO;
    for r in 0..runs as u64 {
        let t0 = Stopwatch::start();
        let answers = method.answer_workload(
            columns,
            domains,
            eps,
            k_ratio,
            workload,
            base_seed.wrapping_add(r * 7919),
        );
        total += t0.elapsed();
        summaries.push(ErrorSummary::from_answers(&answers, truth, sanity));
    }
    EvalOutcome {
        errors: ErrorSummary::average(&summaries),
        mean_time: total / runs as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::synthetic::SyntheticSpec;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn evaluate_averages_runs() {
        let data = SyntheticSpec {
            records: 1_000,
            dims: 2,
            domain: 32,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(0);
        let w = Workload::random(&data.domains(), 10, &mut rng);
        let truth = w.true_counts(data.columns());
        let out = evaluate(
            Method::Psd,
            data.columns(),
            &data.domains(),
            1.0,
            8.0,
            &w,
            &truth,
            1.0,
            4,
            123,
        );
        assert_eq!(out.errors.queries, 40); // 4 runs x 10 queries
        assert!(out.errors.mean_relative.is_finite());
        assert!(out.mean_time > Duration::ZERO);
    }

    #[test]
    fn parallel_and_serial_agree_statistically() {
        // Same seeds => same per-run answers regardless of scheduling.
        let data = SyntheticSpec {
            records: 500,
            dims: 2,
            domain: 16,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(1);
        let w = Workload::random(&data.domains(), 5, &mut rng);
        let truth = w.true_counts(data.columns());
        let a = evaluate(
            Method::Psd,
            data.columns(),
            &data.domains(),
            2.0,
            8.0,
            &w,
            &truth,
            1.0,
            3,
            7,
        );
        let b = evaluate_timed(
            Method::Psd,
            data.columns(),
            &data.domains(),
            2.0,
            8.0,
            &w,
            &truth,
            1.0,
            3,
            7,
        );
        assert!((a.errors.mean_relative - b.errors.mean_relative).abs() < 1e-12);
    }
}
