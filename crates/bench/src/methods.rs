//! A uniform interface over every method the paper compares.

use dpcopula::hybrid::{HybridConfig, HybridSynthesizer};
use dpcopula::kendall::SamplingStrategy;
use dpcopula::mle::PartitionStrategy;
use dpcopula::synthesizer::{CorrelationMethod, DpCopulaConfig};
use dphist::fp::FpSummary;
use dphist::histogram::HistogramNd;
use dphist::php::Php;
use dphist::prefix::PrefixGrid;
use dphist::privelet::PriveletPlus;
use dphist::psd::{Psd, PsdConfig};
use dphist::{Publish1d, RangeCountEstimator};
use dpmech::Epsilon;
use queryeval::Workload;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// The compared methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// DPCopula-Kendall (hybrid wrapper engages automatically on
    /// small-domain attributes).
    DpCopulaKendall,
    /// DPCopula-MLE (requires a large cardinality at high dimensions).
    DpCopulaMle,
    /// Private Spatial Decomposition, KD-hybrid.
    Psd,
    /// Privelet+ via the lazy statistically exact estimator.
    PriveletPlus,
    /// P-HP on the flattened grid (materialised; low dimensions only).
    Php,
    /// Filter Priority sparse summaries.
    Fp,
}

impl Method {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::DpCopulaKendall => "DPCopula",
            Method::DpCopulaMle => "DPCopula-MLE",
            Method::Psd => "PSD",
            Method::PriveletPlus => "Privelet+",
            Method::Php => "P-HP",
            Method::Fp => "FP",
        }
    }

    /// Publishes a DP release of `columns` with budget `eps` and answers
    /// the workload, returning one estimate per query.
    ///
    /// `k_ratio` only affects the DPCopula variants.
    pub fn answer_workload(
        self,
        columns: &[Vec<u32>],
        domains: &[usize],
        eps: f64,
        k_ratio: f64,
        workload: &Workload,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let epsilon = Epsilon::new(eps).expect("positive epsilon");
        match self {
            Method::DpCopulaKendall | Method::DpCopulaMle => {
                // Margins use NoiseFirst rather than the paper's EFPA: on
                // our simulated margins EFPA's Fourier truncation biases
                // range queries, and NoiseFirst measures best across every
                // budget (see the `ablation_margins` experiment and
                // EXPERIMENTS.md); the paper's §4.1 explicitly lists
                // NoiseFirst among the valid margin methods.
                let mut base = DpCopulaConfig::kendall(epsilon)
                    .with_k_ratio(k_ratio)
                    .with_margin(dpcopula::synthesizer::MarginMethod::NoiseFirst);
                if self == Method::DpCopulaMle {
                    // The paper's partition rule assumes n = 10^6-scale
                    // data; fall back to n/100-record blocks when the rule
                    // cannot be satisfied (documented in EXPERIMENTS.md).
                    let n = columns[0].len();
                    let (_, eps2) = epsilon.split_ratio(k_ratio);
                    let required = dpcopula::mle::required_partitions(columns.len(), eps2.value());
                    let strategy = if required * dpcopula::mle::MIN_BLOCK_SIZE <= n {
                        PartitionStrategy::Auto
                    } else {
                        PartitionStrategy::Fixed((n / 100).max(1))
                    };
                    base.method = CorrelationMethod::Mle(strategy);
                } else {
                    base.method = CorrelationMethod::Kendall(SamplingStrategy::Auto);
                }
                let mut hconfig = HybridConfig::new(base);
                hconfig.count_fraction = 0.05;
                let hybrid = HybridSynthesizer::new(hconfig);
                let synth = hybrid
                    .synthesize(columns, domains, &mut rng)
                    .expect("synthesis failed");
                workload.estimate_with(|q| q.count(&synth.columns))
            }
            Method::Psd => {
                let mut psd =
                    Psd::publish(columns, domains, epsilon, PsdConfig::default(), &mut rng);
                workload.estimate_with(|q| psd.range_count(q.ranges()))
            }
            Method::PriveletPlus => {
                let mut p =
                    PriveletPlus::publish(columns.to_vec(), domains, epsilon, seed ^ 0x9e37_79b9);
                workload.estimate_with(|q| p.range_count(q.ranges()))
            }
            Method::Php => {
                // Flatten the (small) grid, publish, rebuild, prefix-sum.
                let exact = HistogramNd::from_columns(columns, domains);
                let noisy = Php::default().publish(exact.counts(), epsilon, &mut rng);
                drop(exact);
                let mut grid = HistogramNd::zeros(domains);
                grid.counts_mut().copy_from_slice(&noisy);
                drop(noisy);
                let mut prefix = PrefixGrid::from_histogram(&grid);
                drop(grid);
                workload.estimate_with(|q| prefix.range_count(q.ranges()))
            }
            Method::Fp => {
                let mut fp = FpSummary::publish(columns, domains, epsilon, None, &mut rng);
                workload.estimate_with(|q| fp.range_count(q.ranges()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::synthetic::{MarginKind, SyntheticSpec};

    #[test]
    fn every_method_answers_a_2d_workload() {
        let data = SyntheticSpec {
            records: 2_000,
            dims: 2,
            domain: 64,
            margin: MarginKind::Gaussian,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(9);
        let workload = Workload::random(&data.domains(), 20, &mut rng);
        let truth = workload.true_counts(data.columns());
        for method in [
            Method::DpCopulaKendall,
            Method::DpCopulaMle,
            Method::Psd,
            Method::PriveletPlus,
            Method::Php,
            Method::Fp,
        ] {
            let answers =
                method.answer_workload(data.columns(), &data.domains(), 5.0, 8.0, &workload, 42);
            assert_eq!(answers.len(), 20, "{}", method.name());
            assert!(
                answers.iter().all(|a| a.is_finite()),
                "{} produced non-finite answers",
                method.name()
            );
            // With eps=5, full-domain-scale queries should be in the right
            // ballpark: check aggregate mass is not absurd.
            let sum_a: f64 = answers.iter().sum();
            let sum_t: f64 = truth.iter().sum();
            assert!(
                (sum_a - sum_t).abs() < sum_t.max(200.0) * 2.0,
                "{}: answers {sum_a} vs truth {sum_t}",
                method.name()
            );
        }
    }
}
