//! # dpcopula-bench — the experiment harness
//!
//! Regenerates every table and figure of the DPCopula paper's evaluation
//! (§5). Each figure has a binary under `src/bin/`; shared machinery lives
//! here:
//!
//! * [`params`] — Table 3's experiment defaults, with environment-variable
//!   overrides (`RUNS`, `QUERIES`, `QUICK=1`);
//! * [`methods`] — a uniform interface over all compared methods
//!   (DPCopula-Kendall/-MLE, PSD, Privelet+, P-HP, FP);
//! * [`runner`] — run-averaged, optionally timed evaluation of a method
//!   over a workload;
//! * [`report`] — console tables and CSV output under `results/`.

pub mod experiments;
pub mod methods;
pub mod params;
pub mod report;
pub mod runner;

pub use methods::Method;
pub use params::ExperimentParams;
pub use report::Table;
pub use runner::{evaluate, evaluate_timed, EvalOutcome};
