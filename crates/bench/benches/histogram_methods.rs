//! Microbenchmark: the multi-dimensional comparison methods — PSD
//! publication, lazy Privelet+ query answering, FP publication — at the
//! evaluation's default scale.

use dphist::fp::FpSummary;
use dphist::privelet::PriveletPlus;
use dphist::psd::{Psd, PsdConfig};
use dphist::RangeCountEstimator;
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};
use std::hint::black_box;
use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};

fn data(n: usize, m: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0..domain)).collect())
        .collect()
}

fn bench_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram_methods");
    g.sample_size(10);
    let eps = Epsilon::new(1.0).unwrap();

    let cols2 = data(50_000, 2, 1000, 1);
    let domains2 = vec![1000usize, 1000];
    g.bench_function("psd_publish_2d_50k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            black_box(Psd::publish(
                &cols2,
                &domains2,
                eps,
                PsdConfig::default(),
                &mut rng,
            ))
        })
    });

    let cols4 = data(50_000, 4, 1000, 3);
    let domains4 = vec![1000usize; 4];
    g.bench_function("psd_publish_4d_50k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            black_box(Psd::publish(
                &cols4,
                &domains4,
                eps,
                PsdConfig::default(),
                &mut rng,
            ))
        })
    });

    g.bench_function("privelet_plus_query_2d", |b| {
        let mut p = PriveletPlus::publish(cols2.clone(), &domains2, eps, 9);
        let q = [(100u32, 800u32), (250u32, 600u32)];
        b.iter(|| black_box(p.range_count(&q)))
    });

    g.bench_function("fp_publish_2d_50k", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(FpSummary::publish(&cols2, &domains2, eps, None, &mut rng)))
    });

    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
