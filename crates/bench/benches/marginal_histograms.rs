//! Microbenchmark: 1-D DP histogram publication (EFPA, identity,
//! Privelet, P-HP) on Gaussian-shaped margins — the per-attribute cost of
//! DPCopula's step 1.

use dphist::efpa::Efpa;
use dphist::identity::Identity;
use dphist::php::Php;
use dphist::privelet::Privelet1d;
use dphist::Publish1d;
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};

fn margin(bins: usize) -> Vec<f64> {
    let mid = bins as f64 / 2.0;
    (0..bins)
        .map(|i| 50_000.0 * (-((i as f64 - mid) / (bins as f64 / 6.0)).powi(2)).exp())
        .collect()
}

fn bench_one<P: Publish1d>(
    g: &mut testkit::bench::BenchmarkGroup<'_>,
    name: &str,
    publisher: &P,
    counts: &[f64],
    bins: usize,
) {
    let eps = Epsilon::new(0.1).unwrap();
    g.bench_with_input(BenchmarkId::new(name, bins), &bins, |b, _| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(publisher.publish(counts, eps, &mut rng)))
    });
}

fn bench_margins(c: &mut Criterion) {
    let mut g = c.benchmark_group("marginal_histograms");
    g.sample_size(10);
    for &bins in &[128usize, 1024] {
        let counts = margin(bins);
        bench_one(&mut g, "efpa", &Efpa, &counts, bins);
        bench_one(&mut g, "identity", &Identity, &counts, bins);
        bench_one(&mut g, "privelet", &Privelet1d, &counts, bins);
        bench_one(&mut g, "php", &Php::default(), &counts, bins);
    }
    g.finish();
}

criterion_group!(benches, bench_margins);
criterion_main!(benches);
