//! Microbenchmark: Kendall's tau — the O(n log n) Knight algorithm vs the
//! quadratic reference, plus the DP release. Backs the paper's
//! "fast Kendall's tau computation" complexity claim (§4.2).

use dpcopula::kendall::{dp_kendall_tau, kendall_tau, kendall_tau_naive};
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};
use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};

fn columns(n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    let y: Vec<u32> = x
        .iter()
        .map(|&v| (v + rng.gen_range(0u32..200)) % 1000)
        .collect();
    (x, y)
}

fn bench_kendall(c: &mut Criterion) {
    let mut g = c.benchmark_group("kendall_tau");
    g.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let (x, y) = columns(n, 42);
        g.bench_with_input(BenchmarkId::new("knight", n), &n, |b, _| {
            b.iter(|| black_box(kendall_tau(&x, &y)))
        });
        if n <= 10_000 {
            g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| black_box(kendall_tau_naive(&x, &y)))
            });
        }
        g.bench_with_input(BenchmarkId::new("dp_release", n), &n, |b, _| {
            let eps = Epsilon::new(0.1).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(dp_kendall_tau(&x, &y, eps, &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kendall);
criterion_main!(benches);
