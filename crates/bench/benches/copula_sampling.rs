//! Microbenchmark: Algorithm 3 — sampling synthetic records from the
//! fitted copula (multivariate normal draw + Phi + inverse margins), per
//! dimensionality.

use dpcopula::empirical::MarginalDistribution;
use dpcopula::sampler::CopulaSampler;
use mathkit::correlation::ar1_correlation;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion, Throughput};
use testkit::{criterion_group, criterion_main};

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("copula_sampling");
    g.sample_size(10);
    for &m in &[2usize, 4, 8] {
        let margins: Vec<MarginalDistribution> = (0..m)
            .map(|_| MarginalDistribution::from_noisy_histogram(&vec![1.0; 1000]))
            .collect();
        let sampler = CopulaSampler::new(&ar1_correlation(m, 0.6), margins).unwrap();
        let n = 10_000usize;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sample_columns", m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(sampler.sample_columns(n, &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
