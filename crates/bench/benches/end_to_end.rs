//! Microbenchmark: the complete DPCopula pipeline (margins + correlation
//! + sampling) at 2-D and 8-D, Kendall and MLE flavours.

use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::mle::PartitionStrategy;
use dpcopula::synthesizer::{CorrelationMethod, DpCopula, DpCopulaConfig};
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for &m in &[2usize, 8] {
        let data = SyntheticSpec {
            records: 10_000,
            dims: m,
            domain: 1000,
            margin: MarginKind::Gaussian,
            ..Default::default()
        }
        .generate();
        let eps = Epsilon::new(1.0).unwrap();

        g.bench_with_input(BenchmarkId::new("kendall", m), &m, |b, _| {
            let config = DpCopulaConfig::kendall(eps);
            let synth = DpCopula::new(config);
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                black_box(
                    synth
                        .synthesize(data.columns(), &data.domains(), &mut rng)
                        .unwrap(),
                )
            })
        });

        g.bench_with_input(BenchmarkId::new("mle", m), &m, |b, _| {
            let mut config = DpCopulaConfig::mle(eps);
            config.method = CorrelationMethod::Mle(PartitionStrategy::Fixed(100));
            let synth = DpCopula::new(config);
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                black_box(
                    synth
                        .synthesize(data.columns(), &data.domains(), &mut rng)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
